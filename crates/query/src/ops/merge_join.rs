//! Sort-merge join — the alternative join algorithm for operator-level
//! energy studies (paper §2: energy/performance trade-offs can be
//! investigated "at the operator-level (e.g. rethinking join algorithms
//! in this context)").
//!
//! Compared with [`crate::ops::HashJoin`], the sort-merge join spends
//! its cycles in comparison-heavy sorting (high switching activity)
//! instead of latency-bound hash probing (low activity): it can be
//! faster or slower depending on input sizes, and it draws *different
//! power* for the same result — exactly the kind of choice an
//! energy-aware optimizer must weigh.

use std::cmp::Ordering;

use eco_simhw::trace::OpClass;
use eco_storage::{tuple_width, Schema, Tuple, Value};

use crate::context::ExecCtx;
use crate::ops::{drain_batches, BoxedOp, Operator};

/// Sort-merge equi-join (multi-column keys). Materializes and sorts
/// both inputs at `open`, then merges.
pub struct SortMergeJoin {
    left: BoxedOp,
    right: BoxedOp,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    schema: Schema,
    output: std::vec::IntoIter<Tuple>,
}

impl SortMergeJoin {
    /// Join `left ⋈ right` on `left_keys = right_keys`. Output schema
    /// is left columns followed by right columns (same convention as
    /// `HashJoin`).
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
    ) -> Self {
        assert_eq!(
            left_keys.len(),
            right_keys.len(),
            "key arity mismatch: {left_keys:?} vs {right_keys:?}"
        );
        assert!(!left_keys.is_empty(), "join needs at least one key");
        let schema = left.schema().join(right.schema());
        Self {
            left,
            right,
            left_keys,
            right_keys,
            schema,
            output: Vec::new().into_iter(),
        }
    }

    fn drain_sorted(child: &mut BoxedOp, keys: &[usize], ctx: &mut ExecCtx) -> Vec<Tuple> {
        child.open(ctx);
        let mut rows = Vec::new();
        let mut scratch = Vec::new();
        drain_batches(child.as_mut(), ctx, &mut scratch, |ctx, batch| {
            let bytes: u64 = batch.iter().map(tuple_width).sum();
            ctx.charge_mem_bytes(bytes);
            rows.append(batch);
        });
        let mut comparisons = 0u64;
        rows.sort_by(|a, b| {
            comparisons += 1;
            cmp_keys(a, b, keys, keys)
        });
        ctx.charge(OpClass::SortCmp, comparisons);
        rows
    }
}

fn cmp_keys(a: &Tuple, b: &Tuple, ka: &[usize], kb: &[usize]) -> Ordering {
    for (&ia, &ib) in ka.iter().zip(kb) {
        let ord = a[ia]
            .partial_cmp_typed(&b[ib])
            .expect("join keys comparable");
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

impl Operator for SortMergeJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        let left = Self::drain_sorted(&mut self.left, &self.left_keys, ctx);
        let right = Self::drain_sorted(&mut self.right, &self.right_keys, ctx);

        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < left.len() && j < right.len() {
            ctx.charge(OpClass::SortCmp, 1);
            match cmp_keys(&left[i], &right[j], &self.left_keys, &self.right_keys) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    // Cross product of the equal-key groups.
                    let key: Vec<Value> =
                        self.left_keys.iter().map(|&k| left[i][k].clone()).collect();
                    let gi_end = (i..left.len())
                        .take_while(|&x| {
                            self.left_keys
                                .iter()
                                .zip(&key)
                                .all(|(&k, v)| &left[x][k] == v)
                        })
                        .last()
                        .expect("group non-empty")
                        + 1;
                    let gj_end = (j..right.len())
                        .take_while(|&x| {
                            self.right_keys
                                .iter()
                                .zip(&key)
                                .all(|(&k, v)| &right[x][k] == v)
                        })
                        .last()
                        .expect("group non-empty")
                        + 1;
                    for l in &left[i..gi_end] {
                        for r in &right[j..gj_end] {
                            let mut t = Vec::with_capacity(l.len() + r.len());
                            t.extend(l.iter().cloned());
                            t.extend(r.iter().cloned());
                            ctx.charge_mem_bytes(tuple_width(&t));
                            out.push(t);
                        }
                    }
                    i = gi_end;
                    j = gj_end;
                }
            }
        }
        self.output = out.into_iter();
    }

    fn next(&mut self, _ctx: &mut ExecCtx) -> Option<Tuple> {
        self.output.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{HashJoin, VecSource};
    use eco_storage::ColumnType;

    fn src(name: &str, vals: &[(i64, &str)]) -> VecSource {
        let schema = Schema::new(&[
            (&format!("{name}_k"), ColumnType::Int),
            (&format!("{name}_v"), ColumnType::Str),
        ]);
        VecSource::new(
            schema,
            vals.iter()
                .map(|(k, v)| vec![Value::Int(*k), Value::str(*v)])
                .collect(),
        )
    }

    fn run(op: &mut dyn Operator) -> Vec<Tuple> {
        let mut ctx = ExecCtx::new();
        op.open(&mut ctx);
        std::iter::from_fn(|| op.next(&mut ctx)).collect()
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let data_l = [(3, "a"), (1, "b"), (2, "c"), (2, "d")];
        let data_r = [(2, "x"), (2, "y"), (9, "z"), (1, "w")];
        let mut mj = SortMergeJoin::new(
            Box::new(src("l", &data_l)),
            Box::new(src("r", &data_r)),
            vec![0],
            vec![0],
        );
        let mut hj = HashJoin::new(
            Box::new(src("l", &data_l)),
            Box::new(src("r", &data_r)),
            vec![0],
            vec![0],
        );
        let mut a = run(&mut mj);
        let mut b = run(&mut hj);
        a.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        b.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        assert_eq!(a, b);
        // Key 2 is 2×2 = 4 rows, key 1 is 1×1.
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn empty_sides() {
        let mut mj = SortMergeJoin::new(
            Box::new(src("l", &[])),
            Box::new(src("r", &[(1, "x")])),
            vec![0],
            vec![0],
        );
        assert!(run(&mut mj).is_empty());
    }

    #[test]
    fn charges_sort_comparisons_not_hash_probes() {
        let data: Vec<(i64, &str)> = (0..100).map(|i| (i % 10, "v")).collect();
        let mut mj = SortMergeJoin::new(
            Box::new(src("l", &data)),
            Box::new(src("r", &data)),
            vec![0],
            vec![0],
        );
        let mut ctx = ExecCtx::new();
        mj.open(&mut ctx);
        assert!(ctx.cpu.count(OpClass::SortCmp) > 200, "sorting dominates");
        assert_eq!(ctx.cpu.count(OpClass::HashProbe), 0);
        assert_eq!(ctx.cpu.count(OpClass::HashBuild), 0);
    }

    #[test]
    #[should_panic(expected = "key arity mismatch")]
    fn mismatched_keys_rejected() {
        let _ = SortMergeJoin::new(
            Box::new(src("l", &[])),
            Box::new(src("r", &[])),
            vec![0],
            vec![0, 1],
        );
    }
}
