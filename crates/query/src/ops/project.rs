//! Projection: compute output expressions per tuple.

use std::sync::Arc;

use eco_storage::{ColumnChunk, ColumnType, DataChunk, Schema, Tuple};

use crate::chunk::Chunk;
use crate::context::ExecCtx;
use crate::expr::Expr;
use crate::ops::{BoxedOp, Operator};
use crate::parallel::Morsel;

/// Expression projection with named output columns.
pub struct Project {
    child: BoxedOp,
    exprs: Vec<Expr>,
    schema: Schema,
    scratch: Vec<Tuple>,
}

impl Project {
    /// Project `child` through `(name, type, expr)` outputs.
    pub fn new(child: BoxedOp, outputs: Vec<(String, ColumnType, Expr)>) -> Self {
        let cols: Vec<(&str, ColumnType)> =
            outputs.iter().map(|(n, t, _)| (n.as_str(), *t)).collect();
        let schema = Schema::new(&cols);
        Self {
            child,
            exprs: outputs.into_iter().map(|(_, _, e)| e).collect(),
            schema,
            scratch: Vec::new(),
        }
    }

    /// Pass-through projection of columns by index.
    pub fn columns(child: BoxedOp, indices: &[usize]) -> Self {
        let schema = child.schema().project(indices);
        let exprs = indices.iter().map(|&i| Expr::col(i)).collect();
        Self {
            child,
            exprs,
            schema,
            scratch: Vec::new(),
        }
    }
}

impl Operator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        self.child.open(ctx);
    }

    fn next(&mut self, ctx: &mut ExecCtx) -> Option<Tuple> {
        let t = self.child.next(ctx)?;
        Some(self.exprs.iter().map(|e| e.eval(&t, ctx)).collect())
    }

    fn next_batch(&mut self, ctx: &mut ExecCtx, out: &mut Vec<Tuple>) -> bool {
        let mut input = std::mem::take(&mut self.scratch);
        input.clear();
        let more = self.child.next_batch(ctx, &mut input);
        out.reserve(input.len());
        for t in &input {
            out.push(self.exprs.iter().map(|e| e.eval(t, ctx)).collect());
        }
        self.scratch = input;
        more
    }

    /// Columnar projection: evaluate each output expression over the
    /// live rows as typed column kernels ([`Expr::eval_column`]),
    /// producing a fresh dense chunk (computed columns have no
    /// selection vector to inherit; passthrough columns keep their
    /// validity masks). Charges match per-row evaluation.
    fn next_chunk(&mut self, ctx: &mut ExecCtx) -> Option<Chunk> {
        let chunk = self.child.next_chunk(ctx)?;
        let rows = chunk.rows();
        let cols: Vec<ColumnChunk> = self
            .exprs
            .iter()
            .map(|e| e.eval_column(&chunk.data, rows, ctx))
            .collect();
        Some(Chunk::dense(Arc::new(DataChunk::new(cols))))
    }

    fn morsels(&self, target_rows: usize) -> Option<Vec<Morsel>> {
        self.child.morsels(target_rows)
    }

    fn clone_morsel(&self, morsel: &Morsel) -> Option<BoxedOp> {
        let child = self.child.clone_morsel(morsel)?;
        Some(Box::new(Project {
            child,
            exprs: self.exprs.clone(),
            schema: self.schema.clone(),
            scratch: Vec::new(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ArithOp;
    use crate::ops::VecSource;
    use eco_storage::Value;

    #[test]
    fn computes_expressions() {
        let schema = Schema::new(&[("a", ColumnType::Int), ("b", ColumnType::Int)]);
        let src = VecSource::new(schema, vec![vec![Value::Int(3), Value::Int(4)]]);
        let mut p = Project::new(
            Box::new(src),
            vec![(
                "sum".to_string(),
                ColumnType::Int,
                Expr::arith(ArithOp::Add, Expr::col(0), Expr::col(1)),
            )],
        );
        let mut ctx = ExecCtx::new();
        p.open(&mut ctx);
        assert_eq!(p.next(&mut ctx).unwrap(), vec![Value::Int(7)]);
        assert_eq!(p.schema().names(), vec!["sum"]);
    }

    #[test]
    fn column_projection() {
        let schema = Schema::new(&[("a", ColumnType::Int), ("b", ColumnType::Str)]);
        let src = VecSource::new(schema, vec![vec![Value::Int(1), Value::str("x")]]);
        let mut p = Project::columns(Box::new(src), &[1]);
        let mut ctx = ExecCtx::new();
        p.open(&mut ctx);
        assert_eq!(p.next(&mut ctx).unwrap(), vec![Value::str("x")]);
        assert_eq!(p.schema().names(), vec!["b"]);
    }
}
