//! Hash aggregation: GROUP BY with SUM / COUNT / MIN / MAX / AVG.

use std::collections::HashMap;
use std::sync::Arc;

use eco_simhw::trace::OpClass;
use eco_storage::{ColumnType, EncodedChunk, EncodedColumn, Schema, Tuple, Value};

use crate::chunk::Chunk;
use crate::context::ExecCtx;
use crate::expr::{AggFunc, Expr};
use crate::ops::{drain_batches, drain_chunks, BoxedOp, Operator};
use crate::parallel::run_morsels;

/// One aggregate output: function, input expression, output name.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Input expression (ignored by `Count`).
    pub input: Expr,
    /// Output column name.
    pub name: String,
}

#[derive(Debug, Clone)]
enum AggState {
    Sum(i64),
    Count(i64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: i64, count: i64 },
}

impl AggState {
    fn new(f: AggFunc) -> Self {
        match f {
            AggFunc::Sum => AggState::Sum(0),
            AggFunc::Count => AggState::Count(0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0, count: 0 },
        }
    }

    fn update(&mut self, v: Option<Value>) {
        match self {
            AggState::Sum(acc) => {
                *acc += v.expect("SUM input").as_int().expect("SUM over Int");
            }
            AggState::Count(acc) => *acc += 1,
            AggState::Min(acc) => {
                let v = v.expect("MIN input");
                let replace = match acc {
                    None => true,
                    Some(cur) => {
                        v.partial_cmp_typed(cur).expect("comparable MIN")
                            == std::cmp::Ordering::Less
                    }
                };
                if replace {
                    *acc = Some(v);
                }
            }
            AggState::Max(acc) => {
                let v = v.expect("MAX input");
                let replace = match acc {
                    None => true,
                    Some(cur) => {
                        v.partial_cmp_typed(cur).expect("comparable MAX")
                            == std::cmp::Ordering::Greater
                    }
                };
                if replace {
                    *acc = Some(v);
                }
            }
            AggState::Avg { sum, count } => {
                *sum += v.expect("AVG input").as_int().expect("AVG over Int");
                *count += 1;
            }
        }
    }

    /// Fold another partial state for the same group into this one.
    /// Merging is free in the energy ledger — like the hash table's own
    /// bookkeeping, it is not one of the paper's metered op classes —
    /// so per-morsel partial aggregation merges to exactly the serial
    /// ledger (every row was already charged where it was absorbed).
    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(v) = b {
                    let replace = match a {
                        None => true,
                        Some(cur) => {
                            v.partial_cmp_typed(cur).expect("comparable MIN")
                                == std::cmp::Ordering::Less
                        }
                    };
                    if replace {
                        *a = Some(v);
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(v) = b {
                    let replace = match a {
                        None => true,
                        Some(cur) => {
                            v.partial_cmp_typed(cur).expect("comparable MAX")
                                == std::cmp::Ordering::Greater
                        }
                    };
                    if replace {
                        *a = Some(v);
                    }
                }
            }
            (AggState::Avg { sum, count }, AggState::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            _ => unreachable!("partial states of one aggregate share a variant"),
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Sum(v) | AggState::Count(v) => Value::Int(v),
            AggState::Min(v) => v.expect("MIN of empty group is unreachable"),
            AggState::Max(v) => v.expect("MAX of empty group is unreachable"),
            AggState::Avg { sum, count } => Value::Int(if count == 0 { 0 } else { sum / count }),
        }
    }
}

/// Index from group key to slot in the ordered accumulator list.
/// Single-column keys are indexed by a [`Value`] directly and composite
/// keys are looked up through a reused scratch vector (via
/// `Vec<Value>: Borrow<[Value]>`), so the steady-state path performs no
/// per-row key allocation.
enum GroupIndex {
    /// Exactly one group column.
    Single(HashMap<Value, usize>),
    /// Zero or several group columns.
    Multi(HashMap<Vec<Value>, usize>),
}

impl GroupIndex {
    /// Slot of the group key currently held in `scratch` (single-key
    /// callers place the one value there too). Lookup borrows the
    /// scratch — no allocation; on first sight the key is inserted with
    /// slot `next` and the materialized key tuple is returned for the
    /// caller to register in its first-seen-ordered storage.
    ///
    /// This is the *single* source of truth for slot assignment: both
    /// the row-path [`GroupTable`] and the columnar
    /// [`ColumnarGroups`] route through it, so their group order (and
    /// with it rows and ledgers) cannot drift apart.
    fn slot_or_insert(&mut self, scratch: &mut Vec<Value>, next: usize) -> (usize, Option<Tuple>) {
        match self {
            GroupIndex::Single(m) => match m.get(&scratch[0]) {
                Some(&s) => (s, None),
                None => {
                    m.insert(scratch[0].clone(), next);
                    (next, Some(std::mem::take(scratch)))
                }
            },
            GroupIndex::Multi(m) => match m.get(scratch.as_slice()) {
                Some(&s) => (s, None),
                None => {
                    let key = std::mem::take(scratch);
                    m.insert(key.clone(), next);
                    (next, Some(key))
                }
            },
        }
    }
}

/// A grouping hash table: first-seen-ordered accumulators plus the
/// key → slot index. One instance drives serial aggregation; parallel
/// workers build one per morsel and the coordinator merges them *in
/// morsel order*, which reproduces the serial stream's global
/// first-seen group order exactly.
struct GroupTable {
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    entries: Vec<(Tuple, Vec<AggState>)>,
    index: GroupIndex,
    scratch_key: Vec<Value>,
}

impl GroupTable {
    fn new(group_cols: Vec<usize>, aggs: Vec<AggSpec>) -> Self {
        let index = if group_cols.len() == 1 {
            GroupIndex::Single(HashMap::new())
        } else {
            GroupIndex::Multi(HashMap::new())
        };
        let scratch_key = Vec::with_capacity(group_cols.len());
        Self {
            group_cols,
            aggs,
            entries: Vec::new(),
            index,
            scratch_key,
        }
    }

    /// Slot for `t`'s group key, inserting a fresh accumulator row on
    /// first sight. Charges nothing (the per-row probe charge is made
    /// by [`Self::absorb`], batch-aggregated).
    fn slot(&mut self, t: &Tuple) -> usize {
        self.scratch_key.clear();
        self.scratch_key
            .extend(self.group_cols.iter().map(|&i| t[i].clone()));
        let (slot, new_key) = self
            .index
            .slot_or_insert(&mut self.scratch_key, self.entries.len());
        if let Some(key) = new_key {
            self.entries.push((
                key,
                self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
            ));
        }
        slot
    }

    /// Absorb one input batch: one probe + one latency-bound access per
    /// input row, and one accumulator update per (row, aggregate) —
    /// charged per batch, identical in total to per-row charging, and
    /// identical wherever the row is absorbed (serial drain or any
    /// worker's morsel).
    fn absorb(&mut self, ctx: &mut ExecCtx, batch: &[Tuple]) {
        let rows = batch.len() as u64;
        ctx.charge(OpClass::HashProbe, rows);
        ctx.charge_mem_random(rows);
        ctx.charge(OpClass::AggUpdate, rows * self.aggs.len() as u64);
        for t in batch {
            let slot = self.slot(t);
            let states = &mut self.entries[slot].1;
            for (state, spec) in states.iter_mut().zip(&self.aggs) {
                let v = match spec.func {
                    AggFunc::Count => None,
                    _ => Some(spec.input.eval(t, ctx)),
                };
                state.update(v);
            }
        }
    }

    /// Slot for an already-extracted group-key tuple (merge path).
    fn slot_for_key(&mut self, key: Tuple) -> usize {
        self.scratch_key = key;
        let (slot, new_key) = self
            .index
            .slot_or_insert(&mut self.scratch_key, self.entries.len());
        if let Some(key) = new_key {
            self.entries.push((
                key,
                self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
            ));
        }
        slot
    }

    /// Merge a partial table built from a later portion of the input
    /// stream. Free in the ledger (see [`AggState::merge`]); first-seen
    /// order is preserved because `other`'s first sight of any group it
    /// shares with `self` came later in stream order.
    fn merge(&mut self, other: GroupTable) {
        for (key, states) in other.entries {
            let slot = self.slot_for_key(key);
            for (mine, theirs) in self.entries[slot].1.iter_mut().zip(states) {
                mine.merge(theirs);
            }
        }
    }
}

/// One aggregate's accumulators for the columnar path: a typed array
/// indexed by group id, updated in tight per-chunk loops instead of
/// per-row `AggState` enum dispatch.
enum ColAcc {
    Sum(Vec<i64>),
    Count(Vec<i64>),
    Min(Vec<Option<Value>>),
    Max(Vec<Option<Value>>),
    Avg { sums: Vec<i64>, counts: Vec<i64> },
}

impl ColAcc {
    fn new(f: AggFunc) -> Self {
        match f {
            AggFunc::Sum => ColAcc::Sum(Vec::new()),
            AggFunc::Count => ColAcc::Count(Vec::new()),
            AggFunc::Min => ColAcc::Min(Vec::new()),
            AggFunc::Max => ColAcc::Max(Vec::new()),
            AggFunc::Avg => ColAcc::Avg {
                sums: Vec::new(),
                counts: Vec::new(),
            },
        }
    }

    /// Add a zeroed slot for a newly-seen group.
    fn grow(&mut self) {
        match self {
            ColAcc::Sum(v) | ColAcc::Count(v) => v.push(0),
            ColAcc::Min(v) | ColAcc::Max(v) => v.push(None),
            ColAcc::Avg { sums, counts } => {
                sums.push(0);
                counts.push(0);
            }
        }
    }

    /// The group's final [`AggState`] (for the shared merge/finish
    /// machinery).
    fn state(&self, gid: usize) -> AggState {
        match self {
            ColAcc::Sum(v) => AggState::Sum(v[gid]),
            ColAcc::Count(v) => AggState::Count(v[gid]),
            ColAcc::Min(v) => AggState::Min(v[gid].clone()),
            ColAcc::Max(v) => AggState::Max(v[gid].clone()),
            ColAcc::Avg { sums, counts } => AggState::Avg {
                sum: sums[gid],
                count: counts[gid],
            },
        }
    }
}

/// The columnar grouping table: the same key → first-seen-slot index as
/// [`GroupTable`], but with typed accumulator arrays ([`ColAcc`]) keyed
/// by group id. Absorbing a chunk computes group ids for every live
/// row, then updates each aggregate in a typed column loop
/// ([`Expr::eval_num`] resolves `SUM`/`AVG` inputs straight to `i64`
/// slices). Charges are identical to [`GroupTable::absorb`]: one
/// `HashProbe` + one random access per row, one `AggUpdate` per
/// (row, aggregate), plus whatever the input expressions charge.
struct ColumnarGroups {
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    keys: Vec<Tuple>,
    index: GroupIndex,
    accs: Vec<ColAcc>,
    /// Reused per-chunk group-id buffer.
    gids: Vec<u32>,
    scratch_key: Vec<Value>,
    /// The encoded chunk the dict-id memo below is keyed against
    /// (compressed pricing, single dictionary-encoded group column).
    dict_enc: Option<Arc<EncodedChunk>>,
    /// Dictionary id → group slot memo (`u32::MAX` = not yet seen).
    /// Lets repeat keys skip re-hashing the string payload entirely:
    /// the id *is* the hash.
    dict_gids: Vec<u32>,
}

impl ColumnarGroups {
    fn new(group_cols: Vec<usize>, aggs: Vec<AggSpec>) -> Self {
        let index = if group_cols.len() == 1 {
            GroupIndex::Single(HashMap::new())
        } else {
            GroupIndex::Multi(HashMap::new())
        };
        let accs = aggs.iter().map(|a| ColAcc::new(a.func)).collect();
        Self {
            scratch_key: Vec::with_capacity(group_cols.len()),
            group_cols,
            aggs,
            keys: Vec::new(),
            index,
            accs,
            gids: Vec::new(),
            dict_enc: None,
            dict_gids: Vec::new(),
        }
    }

    /// Group id for row `i` of `chunk`, inserting a fresh slot (and
    /// growing every accumulator) on first sight. Slot assignment is
    /// the shared [`GroupIndex::slot_or_insert`] discipline, so group
    /// order is the row path's by construction.
    fn gid_of(&mut self, chunk: &Chunk, i: usize) -> u32 {
        self.scratch_key.clear();
        self.scratch_key
            .extend(self.group_cols.iter().map(|&c| chunk.data.value(c, i)));
        self.slot_of_scratch() as u32
    }

    /// Absorb one chunk (see type docs for the charge contract). Under
    /// compressed pricing (the chunk carries an encoded mirror) two
    /// direct-on-compressed paths replace their raw equivalents:
    /// dictionary-id group keys ([`Self::gids_from_dict`]) and
    /// run-at-a-time `SUM`/`AVG` over run-length-encoded inputs (one
    /// `AggUpdate` per gid-constant run fragment, weighted by its
    /// length, instead of one per row).
    fn absorb(&mut self, ctx: &mut ExecCtx, chunk: &Chunk) {
        let n = chunk.len();
        if n == 0 {
            return;
        }

        let mut gids = std::mem::take(&mut self.gids);
        gids.clear();
        gids.reserve(n);
        let dict_keyed = match (&chunk.enc, self.group_cols.len()) {
            (Some(enc), 1) => {
                let enc = Arc::clone(enc);
                self.gids_from_dict(ctx, chunk, &enc, &mut gids)
            }
            _ => false,
        };
        if !dict_keyed {
            ctx.charge(OpClass::HashProbe, n as u64);
            ctx.charge_mem_random(n as u64);
            chunk.rows().for_each(|_, i| {
                let gid = self.gid_of(chunk, i);
                gids.push(gid);
            });
        }

        let rows = chunk.rows();
        for (spec, acc) in self.aggs.iter().zip(&mut self.accs) {
            // Run-length input under compressed pricing → accumulate
            // run fragments, not rows.
            let rle = match (&chunk.enc, &spec.input, spec.func) {
                (Some(enc), Expr::Col(c), AggFunc::Sum | AggFunc::Avg) => match enc.column(*c) {
                    EncodedColumn::RleInt { values, ends } => Some((values, ends)),
                    _ => None,
                },
                _ => None,
            };
            match (spec.func, acc) {
                (AggFunc::Count, ColAcc::Count(counts)) => {
                    ctx.charge(OpClass::AggUpdate, n as u64);
                    for &g in &gids {
                        counts[g as usize] += 1;
                    }
                }
                (AggFunc::Sum, ColAcc::Sum(sums)) => {
                    if let Some((values, ends)) = rle {
                        let frags = rle_accumulate(values, ends, rows, &gids, |g, v, w| {
                            sums[g] += v * w;
                        });
                        ctx.charge(OpClass::AggUpdate, frags);
                        continue;
                    }
                    ctx.charge(OpClass::AggUpdate, n as u64);
                    let src = spec.input.eval_num(&chunk.data, rows, ctx);
                    rows.for_each(|k, i| sums[gids[k] as usize] += src.get(k, i));
                }
                (AggFunc::Avg, ColAcc::Avg { sums, counts }) => {
                    if let Some((values, ends)) = rle {
                        let frags = rle_accumulate(values, ends, rows, &gids, |g, v, w| {
                            sums[g] += v * w;
                            counts[g] += w;
                        });
                        ctx.charge(OpClass::AggUpdate, frags);
                        continue;
                    }
                    ctx.charge(OpClass::AggUpdate, n as u64);
                    let src = spec.input.eval_num(&chunk.data, rows, ctx);
                    rows.for_each(|k, i| {
                        let g = gids[k] as usize;
                        sums[g] += src.get(k, i);
                        counts[g] += 1;
                    });
                }
                (AggFunc::Min, ColAcc::Min(accs)) => {
                    ctx.charge(OpClass::AggUpdate, n as u64);
                    let col = spec.input.eval_column(&chunk.data, rows, ctx);
                    rows.for_each(|k, _| {
                        let g = gids[k] as usize;
                        let v = col.data.value(k);
                        let replace = match &accs[g] {
                            None => true,
                            Some(cur) => {
                                v.partial_cmp_typed(cur).expect("comparable MIN")
                                    == std::cmp::Ordering::Less
                            }
                        };
                        if replace {
                            accs[g] = Some(v);
                        }
                    });
                }
                (AggFunc::Max, ColAcc::Max(accs)) => {
                    ctx.charge(OpClass::AggUpdate, n as u64);
                    let col = spec.input.eval_column(&chunk.data, rows, ctx);
                    rows.for_each(|k, _| {
                        let g = gids[k] as usize;
                        let v = col.data.value(k);
                        let replace = match &accs[g] {
                            None => true,
                            Some(cur) => {
                                v.partial_cmp_typed(cur).expect("comparable MAX")
                                    == std::cmp::Ordering::Greater
                            }
                        };
                        if replace {
                            accs[g] = Some(v);
                        }
                    });
                }
                _ => unreachable!("accumulator variant matches its spec"),
            }
        }
        self.gids = gids;
    }

    /// Dictionary-id group keys: translate each live row's bit-packed
    /// id and serve its group slot from a per-dictionary memo — the id
    /// *is* the hash, so repeat keys never re-hash the string payload.
    /// Memo hits charge one `DictLookup` (an L1 array index); only the
    /// first sight of each id pays the `HashProbe` + random access the
    /// raw path pays on every row. Slot assignment still routes through
    /// [`GroupIndex::slot_or_insert`], so group order (and rows) are
    /// identical to the raw path by construction. Returns `false` when
    /// the single group column is not dictionary-encoded.
    fn gids_from_dict(
        &mut self,
        ctx: &mut ExecCtx,
        chunk: &Chunk,
        enc: &Arc<EncodedChunk>,
        gids: &mut Vec<u32>,
    ) -> bool {
        let col = self.group_cols[0];
        let dict_len = match enc.column(col) {
            EncodedColumn::DictStr { dict, .. } => dict.len(),
            EncodedColumn::DictChar { dict, .. } => dict.len(),
            _ => return false,
        };
        // The memo is keyed by dictionary id, so it is only valid for
        // the encoded chunk that minted those ids.
        if !self.dict_enc.as_ref().is_some_and(|e| Arc::ptr_eq(e, enc)) {
            self.dict_enc = Some(Arc::clone(enc));
            self.dict_gids.clear();
        }
        self.dict_gids.resize(dict_len, u32::MAX);
        let mut misses = 0u64;
        let n = chunk.len() as u64;
        match enc.column(col) {
            EncodedColumn::DictStr { dict, ids } => chunk.rows().for_each(|_, i| {
                let d = ids.get(i) as usize;
                let mut gid = self.dict_gids[d];
                if gid == u32::MAX {
                    misses += 1;
                    self.scratch_key.clear();
                    self.scratch_key.push(Value::Str(Arc::clone(&dict[d])));
                    gid = self.slot_of_scratch() as u32;
                    self.dict_gids[d] = gid;
                }
                gids.push(gid);
            }),
            EncodedColumn::DictChar { dict, ids } => chunk.rows().for_each(|_, i| {
                let d = ids.get(i) as usize;
                let mut gid = self.dict_gids[d];
                if gid == u32::MAX {
                    misses += 1;
                    self.scratch_key.clear();
                    self.scratch_key.push(Value::Char(dict[d]));
                    gid = self.slot_of_scratch() as u32;
                    self.dict_gids[d] = gid;
                }
                gids.push(gid);
            }),
            _ => unreachable!("checked above"),
        }
        ctx.charge(OpClass::DictLookup, n);
        ctx.charge(OpClass::HashProbe, misses);
        ctx.charge_mem_random(misses);
        true
    }

    /// Slot for the key currently in `scratch_key`, growing accumulators
    /// on first sight (shared tail of [`Self::gid_of`] and the dict path).
    fn slot_of_scratch(&mut self) -> usize {
        let (slot, new_key) = self
            .index
            .slot_or_insert(&mut self.scratch_key, self.keys.len());
        if let Some(key) = new_key {
            self.keys.push(key);
            self.accs.iter_mut().for_each(ColAcc::grow);
        }
        slot
    }

    /// Convert into a [`GroupTable`] (first-seen order preserved) so
    /// partial-merge and output assembly stay on one code path.
    fn into_group_table(self) -> GroupTable {
        let mut table = GroupTable::new(self.group_cols, self.aggs);
        for (gid, key) in self.keys.into_iter().enumerate() {
            let slot = table.slot_for_key(key);
            debug_assert_eq!(slot, gid);
            table.entries[slot].1 = self.accs.iter().map(|a| a.state(gid)).collect();
        }
        table
    }
}

/// Run-at-a-time accumulation over a run-length-encoded input column:
/// `f(gid, run value, weight)` once per maximal fragment of live rows
/// sharing one run *and* one group id — the weight is the fragment
/// length, so the result is exactly the per-row accumulation's. Returns
/// the fragment count (the `AggUpdate` charge). Relies on live rows
/// being ascending, so runs advance monotonically.
fn rle_accumulate(
    values: &[i64],
    ends: &[u32],
    rows: crate::chunk::Rows<'_>,
    gids: &[u32],
    mut f: impl FnMut(usize, i64, i64),
) -> u64 {
    let mut run = 0usize;
    let mut cur_run = usize::MAX;
    let mut cur_gid = 0usize;
    let mut weight = 0i64;
    let mut frags = 0u64;
    rows.for_each(|k, i| {
        while ends[run] as usize <= i {
            run += 1;
        }
        let g = gids[k] as usize;
        if run == cur_run && g == cur_gid {
            weight += 1;
        } else {
            if cur_run != usize::MAX {
                f(cur_gid, values[cur_run], weight);
                frags += 1;
            }
            cur_run = run;
            cur_gid = g;
            weight = 1;
        }
    });
    if cur_run != usize::MAX {
        f(cur_gid, values[cur_run], weight);
        frags += 1;
    }
    frags
}

/// Hash-based GROUP BY aggregation. With no group columns, produces a
/// single global row (0 rows in ⇒ 1 output row of zero-counts for
/// `Sum`/`Count`; `Min`/`Max` over empty input panic by design).
///
/// The input is drained through the child's batch path at `open`;
/// per-row charges (`HashProbe`, one random access, one `AggUpdate` per
/// aggregate) are aggregated per batch and are bit-identical to scalar
/// execution.
///
/// With a parallel context and a partitionable child, `open` runs
/// morsel-parallel *partial aggregation*: each worker absorbs its
/// morsels into private `GroupTable`s (charging each row exactly as
/// the serial drain would), and the coordinator folds the partials
/// together in morsel order — a ledger-free merge that reproduces both
/// the serial group values and the serial first-seen output order.
pub struct HashAggregate {
    child: BoxedOp,
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    schema: Schema,
    results: std::vec::IntoIter<Tuple>,
}

impl HashAggregate {
    /// Aggregate `child` grouped by `group_cols` (indexes into the
    /// child schema).
    pub fn new(child: BoxedOp, group_cols: Vec<usize>, aggs: Vec<AggSpec>) -> Self {
        let child_schema = child.schema();
        let mut cols: Vec<(String, ColumnType)> = group_cols
            .iter()
            .map(|&i| {
                let c = &child_schema.columns()[i];
                (c.name.clone(), c.ty)
            })
            .collect();
        for a in &aggs {
            // All aggregates produce Int except MIN/MAX which preserve
            // their input type; Int is the conservative declaration and
            // `Schema::check` is not applied to aggregate outputs.
            cols.push((a.name.clone(), ColumnType::Int));
        }
        let refs: Vec<(&str, ColumnType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        Self {
            child,
            group_cols,
            aggs,
            schema: Schema::new(&refs),
            results: Vec::new().into_iter(),
        }
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        // Aggregation drains its input fully in every mode, so a
        // surrounding Limit's streaming-exactness constraint does not
        // apply below it.
        let saved_exact = ctx.streaming_exact;
        ctx.streaming_exact = 0;
        let group_cols = &self.group_cols;
        let aggs = &self.aggs;
        let partials = run_morsels(self.child.as_ref(), ctx, |wctx, pipe| {
            // Columnar workers absorb chunks into typed accumulator
            // arrays; either way the partial is handed back as a
            // GroupTable so the in-order fold below is engine-agnostic.
            if wctx.columnar {
                let mut part = ColumnarGroups::new(group_cols.clone(), aggs.clone());
                drain_chunks(pipe, wctx, |wctx, chunk| part.absorb(wctx, chunk));
                return part.into_group_table();
            }
            let mut part = GroupTable::new(group_cols.clone(), aggs.clone());
            let mut batch = Vec::new();
            loop {
                batch.clear();
                let more = pipe.next_batch(wctx, &mut batch);
                if !batch.is_empty() {
                    part.absorb(wctx, &batch);
                }
                if !more {
                    break;
                }
            }
            part
        });
        ctx.streaming_exact = saved_exact;

        let table = match partials {
            Some(parts) => {
                // Fold morsel partials in order: serial first-seen
                // group order, serial values, no extra charges.
                let mut table = GroupTable::new(self.group_cols.clone(), self.aggs.clone());
                for part in parts {
                    table.merge(part);
                }
                table
            }
            None if ctx.columnar => {
                self.child.open(ctx);
                let mut groups = ColumnarGroups::new(self.group_cols.clone(), self.aggs.clone());
                drain_chunks(self.child.as_mut(), ctx, |ctx, chunk| {
                    groups.absorb(ctx, chunk);
                });
                groups.into_group_table()
            }
            None => {
                self.child.open(ctx);
                let mut table = GroupTable::new(self.group_cols.clone(), self.aggs.clone());
                let mut batch = Vec::new();
                drain_batches(self.child.as_mut(), ctx, &mut batch, |ctx, batch| {
                    table.absorb(ctx, batch);
                });
                table
            }
        };
        let entries = table.entries;

        if entries.is_empty() && self.group_cols.is_empty() {
            // Global aggregate over empty input.
            let states: Vec<AggState> = self.aggs.iter().map(|a| AggState::new(a.func)).collect();
            let row: Tuple = states
                .into_iter()
                .map(|s| match s {
                    AggState::Min(None) | AggState::Max(None) => Value::Int(0),
                    other => other.finish(),
                })
                .collect();
            self.results = vec![row].into_iter();
            return;
        }

        let mut out = Vec::with_capacity(entries.len());
        for (key, states) in entries {
            let mut row = key;
            for s in states {
                row.push(s.finish());
            }
            out.push(row);
        }
        self.results = out.into_iter();
    }

    fn next(&mut self, _ctx: &mut ExecCtx) -> Option<Tuple> {
        self.results.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::VecSource;

    fn source() -> VecSource {
        let schema = Schema::new(&[("g", ColumnType::Str), ("v", ColumnType::Int)]);
        VecSource::new(
            schema,
            vec![
                vec![Value::str("a"), Value::Int(1)],
                vec![Value::str("b"), Value::Int(10)],
                vec![Value::str("a"), Value::Int(2)],
                vec![Value::str("b"), Value::Int(20)],
                vec![Value::str("a"), Value::Int(3)],
            ],
        )
    }

    fn run(agg: &mut HashAggregate) -> Vec<Tuple> {
        let mut ctx = ExecCtx::new();
        agg.open(&mut ctx);
        std::iter::from_fn(|| agg.next(&mut ctx)).collect()
    }

    #[test]
    fn grouped_sum_count() {
        let mut agg = HashAggregate::new(
            Box::new(source()),
            vec![0],
            vec![
                AggSpec {
                    func: AggFunc::Sum,
                    input: Expr::col(1),
                    name: "s".into(),
                },
                AggSpec {
                    func: AggFunc::Count,
                    input: Expr::col(1),
                    name: "c".into(),
                },
            ],
        );
        let out = run(&mut agg);
        assert_eq!(out.len(), 2);
        // First-seen order: a then b.
        assert_eq!(out[0], vec![Value::str("a"), Value::Int(6), Value::Int(3)]);
        assert_eq!(out[1], vec![Value::str("b"), Value::Int(30), Value::Int(2)]);
        assert_eq!(agg.schema().names(), vec!["g", "s", "c"]);
    }

    #[test]
    fn min_max_avg() {
        let mut agg = HashAggregate::new(
            Box::new(source()),
            vec![],
            vec![
                AggSpec {
                    func: AggFunc::Min,
                    input: Expr::col(1),
                    name: "mn".into(),
                },
                AggSpec {
                    func: AggFunc::Max,
                    input: Expr::col(1),
                    name: "mx".into(),
                },
                AggSpec {
                    func: AggFunc::Avg,
                    input: Expr::col(1),
                    name: "av".into(),
                },
            ],
        );
        let out = run(&mut agg);
        assert_eq!(
            out,
            vec![vec![Value::Int(1), Value::Int(20), Value::Int(7)]]
        );
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let src = VecSource::new(schema, vec![]);
        let mut agg = HashAggregate::new(
            Box::new(src),
            vec![],
            vec![AggSpec {
                func: AggFunc::Sum,
                input: Expr::col(0),
                name: "s".into(),
            }],
        );
        let out = run(&mut agg);
        assert_eq!(out, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn grouped_over_empty_input_yields_nothing() {
        let schema = Schema::new(&[("g", ColumnType::Int), ("v", ColumnType::Int)]);
        let src = VecSource::new(schema, vec![]);
        let mut agg = HashAggregate::new(
            Box::new(src),
            vec![0],
            vec![AggSpec {
                func: AggFunc::Sum,
                input: Expr::col(1),
                name: "s".into(),
            }],
        );
        assert!(run(&mut agg).is_empty());
    }

    /// Micro-assertion for the multi-column group-key path: composite
    /// keys produce identical groups, values and ledgers across scalar,
    /// batch and columnar execution (the columnar path probes the same
    /// scratch-buffered index, so no `Vec<Value>` per row anywhere).
    #[test]
    fn multi_key_groups_and_ledgers_identical_across_engines() {
        use crate::exec::ExecEngine;
        let schema = Schema::new(&[
            ("g1", ColumnType::Str),
            ("g2", ColumnType::Int),
            ("v", ColumnType::Int),
        ]);
        let mk = || {
            let src = VecSource::new(
                schema.clone(),
                (0..50)
                    .map(|i| {
                        vec![
                            Value::str(format!("s{}", i % 3)),
                            Value::Int(i % 4),
                            Value::Int(i),
                        ]
                    })
                    .collect(),
            );
            HashAggregate::new(
                Box::new(src),
                vec![0, 1],
                vec![
                    AggSpec {
                        func: AggFunc::Sum,
                        input: Expr::col(2),
                        name: "s".into(),
                    },
                    AggSpec {
                        func: AggFunc::Min,
                        input: Expr::col(2),
                        name: "mn".into(),
                    },
                ],
            )
        };

        let mut sctx = ExecCtx::new().with_batch_size(1);
        let mut agg = mk();
        let scalar_rows = crate::exec::execute_scalar(&mut agg, &mut sctx);
        assert_eq!(scalar_rows.len(), 12, "3 × 4 composite groups");

        for engine in [ExecEngine::Batch, ExecEngine::Columnar] {
            let mut ctx = ExecCtx::new();
            let mut agg = mk();
            let rows = engine.execute(&mut agg, &mut ctx);
            assert_eq!(rows, scalar_rows, "{engine:?}: groups differ");
            assert_eq!(ctx.cpu, sctx.cpu, "{engine:?}: op counts differ");
            assert_eq!(
                ctx.mem_random_accesses, sctx.mem_random_accesses,
                "{engine:?}"
            );
        }
    }

    /// Micro-assertion for the compressed aggregate kernels: under
    /// compressed pricing the dictionary-id group path and the RLE
    /// run-at-a-time path must produce exactly the raw path's rows —
    /// while charging per distinct id / per run fragment instead of
    /// per row.
    #[test]
    fn compressed_dict_keys_and_rle_runs_match_raw_path() {
        use crate::ops::SeqScan;
        use eco_simhw::trace::PricingMode;
        use eco_storage::{Catalog, HeapTable};

        let schema = Schema::new(&[("g", ColumnType::Str), ("v", ColumnType::Int)]);
        // g: 5 distinct strings → dict-str; v: 10 runs of 60 → rle-int.
        let tuples: Vec<Tuple> = (0..600)
            .map(|i| vec![Value::str(format!("g{}", i % 5)), Value::Int(i / 60)])
            .collect();
        let mut cat = Catalog::new(1 << 20);
        cat.add_memory_table("t", HeapTable::from_tuples(schema, tuples));

        let mk = |group: Vec<usize>| {
            HashAggregate::new(
                Box::new(SeqScan::new(cat.expect("t"))),
                group,
                vec![
                    AggSpec {
                        func: AggFunc::Sum,
                        input: Expr::col(1),
                        name: "s".into(),
                    },
                    AggSpec {
                        func: AggFunc::Avg,
                        input: Expr::col(1),
                        name: "a".into(),
                    },
                    AggSpec {
                        func: AggFunc::Count,
                        input: Expr::col(1),
                        name: "c".into(),
                    },
                ],
            )
        };

        let run = |agg: &mut HashAggregate, pricing: PricingMode| {
            let mut ctx = ExecCtx::new().with_columnar(true).with_pricing(pricing);
            agg.open(&mut ctx);
            let rows: Vec<Tuple> = std::iter::from_fn(|| agg.next(&mut ctx)).collect();
            (rows, ctx)
        };

        // Grouped by the dictionary column.
        let (raw_rows, raw_ctx) = run(&mut mk(vec![0]), PricingMode::Raw);
        let (comp_rows, comp_ctx) = run(&mut mk(vec![0]), PricingMode::Compressed);
        assert_eq!(comp_rows, raw_rows, "dict-keyed groups must match raw");
        assert_eq!(raw_ctx.cpu.count(OpClass::HashProbe), 600);
        assert_eq!(
            comp_ctx.cpu.count(OpClass::HashProbe),
            5,
            "only first sight of each dictionary id probes the hash table"
        );
        assert_eq!(comp_ctx.cpu.count(OpClass::DictLookup), 600);
        assert_eq!(comp_ctx.mem_random_accesses, 5);

        // Global aggregate over the RLE column: one AggUpdate per run
        // fragment for SUM and AVG (10 runs, one chunk), per row for
        // COUNT.
        let (raw_rows, raw_ctx) = run(&mut mk(vec![]), PricingMode::Raw);
        let (comp_rows, comp_ctx) = run(&mut mk(vec![]), PricingMode::Compressed);
        assert_eq!(comp_rows, raw_rows, "run-at-a-time totals must match raw");
        assert_eq!(raw_ctx.cpu.count(OpClass::AggUpdate), 1800);
        assert_eq!(
            comp_ctx.cpu.count(OpClass::AggUpdate),
            10 + 10 + 600,
            "SUM and AVG touch runs, COUNT touches rows"
        );
    }

    #[test]
    fn charges_agg_updates() {
        let mut agg = HashAggregate::new(
            Box::new(source()),
            vec![0],
            vec![AggSpec {
                func: AggFunc::Sum,
                input: Expr::col(1),
                name: "s".into(),
            }],
        );
        let mut ctx = ExecCtx::new();
        agg.open(&mut ctx);
        assert_eq!(ctx.cpu.count(OpClass::AggUpdate), 5);
        assert_eq!(ctx.cpu.count(OpClass::HashProbe), 5);
    }
}
