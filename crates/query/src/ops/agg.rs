//! Hash aggregation: GROUP BY with SUM / COUNT / MIN / MAX / AVG.

use std::collections::HashMap;

use eco_simhw::trace::OpClass;
use eco_storage::{ColumnType, Schema, Tuple, Value};

use crate::context::ExecCtx;
use crate::expr::{AggFunc, Expr};
use crate::ops::{drain_batches, BoxedOp, Operator};

/// One aggregate output: function, input expression, output name.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Input expression (ignored by `Count`).
    pub input: Expr,
    /// Output column name.
    pub name: String,
}

#[derive(Debug, Clone)]
enum AggState {
    Sum(i64),
    Count(i64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: i64, count: i64 },
}

impl AggState {
    fn new(f: AggFunc) -> Self {
        match f {
            AggFunc::Sum => AggState::Sum(0),
            AggFunc::Count => AggState::Count(0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0, count: 0 },
        }
    }

    fn update(&mut self, v: Option<Value>) {
        match self {
            AggState::Sum(acc) => {
                *acc += v.expect("SUM input").as_int().expect("SUM over Int");
            }
            AggState::Count(acc) => *acc += 1,
            AggState::Min(acc) => {
                let v = v.expect("MIN input");
                let replace = match acc {
                    None => true,
                    Some(cur) => {
                        v.partial_cmp_typed(cur).expect("comparable MIN")
                            == std::cmp::Ordering::Less
                    }
                };
                if replace {
                    *acc = Some(v);
                }
            }
            AggState::Max(acc) => {
                let v = v.expect("MAX input");
                let replace = match acc {
                    None => true,
                    Some(cur) => {
                        v.partial_cmp_typed(cur).expect("comparable MAX")
                            == std::cmp::Ordering::Greater
                    }
                };
                if replace {
                    *acc = Some(v);
                }
            }
            AggState::Avg { sum, count } => {
                *sum += v.expect("AVG input").as_int().expect("AVG over Int");
                *count += 1;
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Sum(v) | AggState::Count(v) => Value::Int(v),
            AggState::Min(v) => v.expect("MIN of empty group is unreachable"),
            AggState::Max(v) => v.expect("MAX of empty group is unreachable"),
            AggState::Avg { sum, count } => Value::Int(if count == 0 { 0 } else { sum / count }),
        }
    }
}

/// Index from group key to slot in the ordered accumulator list.
/// Single-column keys are indexed by a borrowed [`Value`] directly and
/// composite keys are looked up through a reused scratch vector (via
/// `Vec<Value>: Borrow<[Value]>`), so the steady-state path performs no
/// per-row key allocation.
enum GroupIndex {
    /// Exactly one group column.
    Single(HashMap<Value, usize>),
    /// Zero or several group columns.
    Multi(HashMap<Vec<Value>, usize>),
}

/// Hash-based GROUP BY aggregation. With no group columns, produces a
/// single global row (0 rows in ⇒ 1 output row of zero-counts for
/// `Sum`/`Count`; `Min`/`Max` over empty input panic by design).
///
/// The input is drained through the child's batch path at `open`;
/// per-row charges (`HashProbe`, one random access, one `AggUpdate` per
/// aggregate) are aggregated per batch and are bit-identical to scalar
/// execution.
pub struct HashAggregate {
    child: BoxedOp,
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    schema: Schema,
    results: std::vec::IntoIter<Tuple>,
}

impl HashAggregate {
    /// Aggregate `child` grouped by `group_cols` (indexes into the
    /// child schema).
    pub fn new(child: BoxedOp, group_cols: Vec<usize>, aggs: Vec<AggSpec>) -> Self {
        let child_schema = child.schema();
        let mut cols: Vec<(String, ColumnType)> = group_cols
            .iter()
            .map(|&i| {
                let c = &child_schema.columns()[i];
                (c.name.clone(), c.ty)
            })
            .collect();
        for a in &aggs {
            // All aggregates produce Int except MIN/MAX which preserve
            // their input type; Int is the conservative declaration and
            // `Schema::check` is not applied to aggregate outputs.
            cols.push((a.name.clone(), ColumnType::Int));
        }
        let refs: Vec<(&str, ColumnType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        Self {
            child,
            group_cols,
            aggs,
            schema: Schema::new(&refs),
            results: Vec::new().into_iter(),
        }
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecCtx) {
        self.child.open(ctx);
        // First-seen-ordered accumulators plus a key → slot index.
        let mut entries: Vec<(Tuple, Vec<AggState>)> = Vec::new();
        let mut index = if self.group_cols.len() == 1 {
            GroupIndex::Single(HashMap::new())
        } else {
            GroupIndex::Multi(HashMap::new())
        };
        let mut scratch_key: Vec<Value> = Vec::with_capacity(self.group_cols.len());
        let mut batch = Vec::new();

        let group_cols = &self.group_cols;
        let aggs = &self.aggs;
        drain_batches(self.child.as_mut(), ctx, &mut batch, |ctx, batch| {
            // One probe + one latency-bound access per input row, and
            // one accumulator update per (row, aggregate) — charged per
            // batch, identical in total to per-row charging.
            let rows = batch.len() as u64;
            ctx.charge(OpClass::HashProbe, rows);
            ctx.charge_mem_random(rows);
            ctx.charge(OpClass::AggUpdate, rows * aggs.len() as u64);
            for t in batch.iter() {
                let slot = match &mut index {
                    GroupIndex::Single(m) => {
                        let key = &t[group_cols[0]];
                        match m.get(key) {
                            Some(&i) => i,
                            None => {
                                let i = entries.len();
                                m.insert(key.clone(), i);
                                entries.push((
                                    vec![key.clone()],
                                    aggs.iter().map(|a| AggState::new(a.func)).collect(),
                                ));
                                i
                            }
                        }
                    }
                    GroupIndex::Multi(m) => {
                        scratch_key.clear();
                        scratch_key.extend(group_cols.iter().map(|&i| t[i].clone()));
                        match m.get(scratch_key.as_slice()) {
                            Some(&i) => i,
                            None => {
                                let i = entries.len();
                                let key = std::mem::take(&mut scratch_key);
                                m.insert(key.clone(), i);
                                entries.push((
                                    key,
                                    aggs.iter().map(|a| AggState::new(a.func)).collect(),
                                ));
                                i
                            }
                        }
                    }
                };
                for (state, spec) in entries[slot].1.iter_mut().zip(aggs) {
                    let v = match spec.func {
                        AggFunc::Count => None,
                        _ => Some(spec.input.eval(t, ctx)),
                    };
                    state.update(v);
                }
            }
        });

        if entries.is_empty() && self.group_cols.is_empty() {
            // Global aggregate over empty input.
            let states: Vec<AggState> = self.aggs.iter().map(|a| AggState::new(a.func)).collect();
            let row: Tuple = states
                .into_iter()
                .map(|s| match s {
                    AggState::Min(None) | AggState::Max(None) => Value::Int(0),
                    other => other.finish(),
                })
                .collect();
            self.results = vec![row].into_iter();
            return;
        }

        let mut out = Vec::with_capacity(entries.len());
        for (key, states) in entries {
            let mut row = key;
            for s in states {
                row.push(s.finish());
            }
            out.push(row);
        }
        self.results = out.into_iter();
    }

    fn next(&mut self, _ctx: &mut ExecCtx) -> Option<Tuple> {
        self.results.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::VecSource;

    fn source() -> VecSource {
        let schema = Schema::new(&[("g", ColumnType::Str), ("v", ColumnType::Int)]);
        VecSource::new(
            schema,
            vec![
                vec![Value::str("a"), Value::Int(1)],
                vec![Value::str("b"), Value::Int(10)],
                vec![Value::str("a"), Value::Int(2)],
                vec![Value::str("b"), Value::Int(20)],
                vec![Value::str("a"), Value::Int(3)],
            ],
        )
    }

    fn run(agg: &mut HashAggregate) -> Vec<Tuple> {
        let mut ctx = ExecCtx::new();
        agg.open(&mut ctx);
        std::iter::from_fn(|| agg.next(&mut ctx)).collect()
    }

    #[test]
    fn grouped_sum_count() {
        let mut agg = HashAggregate::new(
            Box::new(source()),
            vec![0],
            vec![
                AggSpec {
                    func: AggFunc::Sum,
                    input: Expr::col(1),
                    name: "s".into(),
                },
                AggSpec {
                    func: AggFunc::Count,
                    input: Expr::col(1),
                    name: "c".into(),
                },
            ],
        );
        let out = run(&mut agg);
        assert_eq!(out.len(), 2);
        // First-seen order: a then b.
        assert_eq!(out[0], vec![Value::str("a"), Value::Int(6), Value::Int(3)]);
        assert_eq!(out[1], vec![Value::str("b"), Value::Int(30), Value::Int(2)]);
        assert_eq!(agg.schema().names(), vec!["g", "s", "c"]);
    }

    #[test]
    fn min_max_avg() {
        let mut agg = HashAggregate::new(
            Box::new(source()),
            vec![],
            vec![
                AggSpec {
                    func: AggFunc::Min,
                    input: Expr::col(1),
                    name: "mn".into(),
                },
                AggSpec {
                    func: AggFunc::Max,
                    input: Expr::col(1),
                    name: "mx".into(),
                },
                AggSpec {
                    func: AggFunc::Avg,
                    input: Expr::col(1),
                    name: "av".into(),
                },
            ],
        );
        let out = run(&mut agg);
        assert_eq!(
            out,
            vec![vec![Value::Int(1), Value::Int(20), Value::Int(7)]]
        );
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let src = VecSource::new(schema, vec![]);
        let mut agg = HashAggregate::new(
            Box::new(src),
            vec![],
            vec![AggSpec {
                func: AggFunc::Sum,
                input: Expr::col(0),
                name: "s".into(),
            }],
        );
        let out = run(&mut agg);
        assert_eq!(out, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn grouped_over_empty_input_yields_nothing() {
        let schema = Schema::new(&[("g", ColumnType::Int), ("v", ColumnType::Int)]);
        let src = VecSource::new(schema, vec![]);
        let mut agg = HashAggregate::new(
            Box::new(src),
            vec![0],
            vec![AggSpec {
                func: AggFunc::Sum,
                input: Expr::col(1),
                name: "s".into(),
            }],
        );
        assert!(run(&mut agg).is_empty());
    }

    #[test]
    fn charges_agg_updates() {
        let mut agg = HashAggregate::new(
            Box::new(source()),
            vec![0],
            vec![AggSpec {
                func: AggFunc::Sum,
                input: Expr::col(1),
                name: "s".into(),
            }],
        );
        let mut ctx = ExecCtx::new();
        agg.open(&mut ctx);
        assert_eq!(ctx.cpu.count(OpClass::AggUpdate), 5);
        assert_eq!(ctx.cpu.count(OpClass::HashProbe), 5);
    }
}
