//! # eco-query — the query execution engine under ecoDB
//!
//! A Volcano-style (iterator) executor over `eco-storage` tables. Every
//! operator does *real* work on real tuples — scans scan, hash joins
//! build and probe real hash tables, aggregates accumulate — and
//! simultaneously accounts for that work in an [`context::ExecCtx`]
//! ledger, which the machine model (`eco-simhw`) later prices in time
//! and joules under a PVC setting.
//!
//! The crate also provides:
//!
//! * hand-built physical plans for TPC-H Q1/Q3/Q5/Q6 and simple
//!   selections ([`plans`]) — no indexes anywhere, matching the paper's
//!   setup ("we did not create any database indices");
//! * the multi-query optimizer used by QED ([`mqo`]): merge a batch of
//!   selection queries into one disjunctive scan and split the results;
//! * a cardinality + energy/time cost model ([`estimate`]) — the
//!   "energy-aware optimizer" piece of the paper's vision.

pub mod context;
pub mod estimate;
pub mod exec;
pub mod expr;
pub mod mqo;
pub mod ops;
pub mod plans;
pub mod sql;

pub use context::ExecCtx;
pub use exec::{execute, execute_into};
pub use expr::{AggFunc, ArithOp, CmpOp, Expr};
pub use ops::Operator;
