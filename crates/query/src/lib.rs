//! # eco-query — the query execution engine under ecoDB
//!
//! A Volcano-style (iterator) executor over `eco-storage` tables with a
//! **vectorized batch path**. Every operator does *real* work on real
//! tuples — scans scan, hash joins build and probe real hash tables,
//! aggregates accumulate — and simultaneously accounts for that work in
//! an [`context::ExecCtx`] ledger, which the machine model (`eco-simhw`)
//! later prices in time and joules under a PVC setting.
//!
//! ## Batch execution
//!
//! [`ops::Operator::next_batch`] moves up to
//! [`ExecCtx::batch_size`](context::ExecCtx) tuples (default
//! [`context::DEFAULT_BATCH_SIZE`] = 1024) per virtual call;
//! [`exec::execute`] drives plans through it, while
//! [`exec::execute_scalar`] retains the tuple-at-a-time loop as the
//! measured baseline. Scans emit whole page slices, filters push their
//! predicate into the scan and evaluate it over borrowed rows (cloning
//! only survivors), joins probe per batch with no per-row key
//! allocation for single-column keys, and blocking operators drain
//! their children in batches.
//!
//! The load-bearing invariant: **the energy ledger is identical across
//! the two paths** — same op-class counts, memory bytes, random
//! accesses and disk I/O, bit for bit. Batch paths charge per batch
//! *with counts* (`charge(class, n)`), never re-price work, so a
//! figure computed from a batch run equals one computed from a scalar
//! run (enforced by `tests/integration_vectorized.rs`). The batch size
//! is a pure throughput knob: on a scan-heavy TPC-H Q6 the batch path
//! is several times faster (`cargo bench -p eco-bench --bench
//! exec_batch_vs_scalar`) while producing the same rows and the same
//! joules.
//!
//! ## Columnar execution
//!
//! [`ops::Operator::next_chunk`] streams [`chunk::Chunk`]s — `Arc`-shared
//! windows of typed column vectors (`eco-storage`'s `DataChunk`) plus a
//! *selection vector* of live rows — through the plan instead of
//! `Vec<Tuple>` batches. Scans emit windows over a table's columnar
//! mirror with no per-row clone; filters refine the selection vector
//! column-at-a-time (short-circuiting becomes selection narrowing, with
//! identical evaluation counts); aggregates update typed accumulator
//! arrays keyed by group id; joins hash key columns directly; rows are
//! re-materialized only at pipeline breakers and at the very top
//! (**late materialization**). [`exec::execute_columnar`] drives the
//! path (and [`exec::ExecEngine`] names all three engines); on
//! scan-heavy TPC-H Q1/Q6 it is ~3-4x faster than the batch path
//! (`exec_batch_vs_scalar` bench, recorded per-commit in CI's
//! `BENCH_columnar.json`) while producing the same rows and **the same
//! bit-identical energy ledger** — enforced by
//! `tests/integration_columnar.rs` and the `columnar_matches_scalar`
//! property test, on both storage engines, cold and warm, serial and
//! morsel-parallel.
//!
//! ## Morsel-driven parallel execution
//!
//! [`exec::execute_parallel`] runs a plan across worker threads:
//! partitionable pipelines split into [`parallel::Morsel`]s (rows for
//! memory sources, whole disk extents for paged tables), workers run
//! per-morsel pipeline clones charging private forked ledgers, and
//! results merge back **in morsel order** — through the
//! [`ops::Exchange`] / [`ops::GatherMerge`] operators, a partitioned
//! parallel [`ops::HashJoin`] build, per-morsel partial aggregation in
//! [`ops::HashAggregate`], and an order-preserving gather below
//! [`ops::Sort`]. The batch-path invariant extends to parallelism: the
//! **merged ledger is bit-identical to serial execution at every worker
//! count** (enforced by `tests/integration_parallel.rs` and the
//! `parallel_matches_serial` property test), so every figure in the
//! reproduction is reproducible at any core count while wall-clock time
//! scales with workers (`cargo bench -p eco-bench --bench
//! exec_parallel_scaling`).
//!
//! The crate also provides:
//!
//! * hand-built physical plans for TPC-H Q1/Q3/Q5/Q6 and simple
//!   selections ([`plans`]) — index-free by default, matching the
//!   paper's setup ("we did not create any database indices"), with
//!   opt-in `*_indexed` variants ([`ops::IxScan`] probes and
//!   [`ops::IxJoin`] index nested loops, ledger schema v4) for the
//!   random-vs-sequential energy studies;
//! * the multi-query optimizer used by QED ([`mqo`]): merge a batch of
//!   selection queries into one disjunctive scan and split the results;
//! * a cardinality + energy/time cost model ([`estimate`]) — the
//!   "energy-aware optimizer" piece of the paper's vision.

pub mod chunk;
pub mod context;
pub mod error;
pub mod estimate;
pub mod exec;
pub mod expr;
pub mod mqo;
pub mod ops;
pub mod parallel;
pub mod plans;
pub mod sql;

pub use chunk::{Chunk, Rows};
pub use context::ExecCtx;
pub use error::ExecError;
pub use exec::{
    execute, execute_columnar, execute_columnar_into, execute_into, execute_parallel,
    execute_parallel_into, try_execute_parallel_into, ExecEngine,
};
pub use expr::{AggFunc, ArithOp, CmpOp, Expr};
pub use ops::Operator;
pub use parallel::Morsel;
