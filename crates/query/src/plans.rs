//! Hand-built physical plans for the paper's queries (plus Q1/Q3/Q6
//! used in extension studies). The paper's own experiments are
//! index-free, so the canonical plans use scans + hash joins only;
//! the `*_indexed` variants added with ledger schema v4 swap in
//! [`IxScan`]/[`IxJoin`] access paths for the scan-vs-probe energy
//! studies, and return `None` when the catalog carries no suitable
//! index — index-free runs never change shape.
//!
//! Column positions are resolved by name through each intermediate
//! schema (TPC-H column names are globally unique), so join reordering
//! does not silently break expressions.

use std::sync::Arc;

use eco_storage::{Catalog, ColumnType, Tuple, Value};
use eco_tpch::{Q5Params, QedQuery};

use crate::expr::{AggFunc, ArithOp, CmpOp, Expr};
use crate::ops::{
    AggSpec, BoxedOp, Filter, HashAggregate, HashJoin, IxBound, IxJoin, IxScan, Limit, SeqScan,
    Sort, SortKey,
};

/// `extendedprice × (100 − discount) / 100` over the given column
/// positions — Q3/Q5's revenue expression in integer cents.
pub fn revenue_expr(ep_col: usize, disc_col: usize) -> Expr {
    Expr::arith(
        ArithOp::Div,
        Expr::arith(
            ArithOp::Mul,
            Expr::col(ep_col),
            Expr::arith(ArithOp::Sub, Expr::int(100), Expr::col(disc_col)),
        ),
        Expr::int(100),
    )
}

fn scan(catalog: &Catalog, table: &str) -> BoxedOp {
    Box::new(SeqScan::new(catalog.expect(table)))
}

fn idx(op: &BoxedOp, name: &str) -> usize {
    op.schema().expect_index(name)
}

/// TPC-H Q5: local supplier volume.
///
/// ```sql
/// SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
/// FROM customer, orders, lineitem, supplier, nation, region
/// WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
///   AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
///   AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
///   AND r_name = :region
///   AND o_orderdate >= :from AND o_orderdate < :to
/// GROUP BY n_name ORDER BY revenue DESC
/// ```
///
/// Join order (small → large, hash build on the small side):
/// region → nation → customer → orders(σ date) → lineitem → supplier.
pub fn q5_plan(catalog: &Catalog, params: &Q5Params) -> BoxedOp {
    // σ(r_name = :region) region
    let region = Box::new(Filter::new(
        scan(catalog, "region"),
        Expr::cmp(
            CmpOp::Eq,
            Expr::col(catalog.expect("region").schema().expect_index("r_name")),
            Expr::str(&params.region),
        ),
    )) as BoxedOp;

    // ⋈ nation
    let nation = scan(catalog, "nation");
    let j1 = Box::new(HashJoin::new(
        region,
        nation,
        vec![0], // r_regionkey (resolved below for clarity in later joins)
        vec![catalog
            .expect("nation")
            .schema()
            .expect_index("n_regionkey")],
    )) as BoxedOp;

    // ⋈ customer
    let customer = scan(catalog, "customer");
    let c_nationkey = customer.schema().expect_index("c_nationkey");
    let j2 = Box::new(HashJoin::new_keyed(
        j1.into_keyed("n_nationkey"),
        customer,
        vec![c_nationkey],
    )) as BoxedOp;

    // ⋈ σ(date) orders
    let orders_scan = scan(catalog, "orders");
    let o_orderdate = orders_scan.schema().expect_index("o_orderdate");
    let o_custkey = orders_scan.schema().expect_index("o_custkey");
    let orders = Box::new(Filter::new(
        orders_scan,
        Expr::And(vec![
            Expr::cmp(
                CmpOp::Ge,
                Expr::col(o_orderdate),
                Expr::date(params.date_from.0),
            ),
            Expr::cmp(
                CmpOp::Lt,
                Expr::col(o_orderdate),
                Expr::date(params.date_to.0),
            ),
        ]),
    )) as BoxedOp;
    let j3 = Box::new(HashJoin::new_keyed(
        j2.into_keyed("c_custkey"),
        orders,
        vec![o_custkey],
    )) as BoxedOp;

    // ⋈ lineitem
    let lineitem = scan(catalog, "lineitem");
    let l_orderkey = lineitem.schema().expect_index("l_orderkey");
    let j4 = Box::new(HashJoin::new_keyed(
        j3.into_keyed("o_orderkey"),
        lineitem,
        vec![l_orderkey],
    )) as BoxedOp;

    // ⋈ supplier on (s_suppkey = l_suppkey, s_nationkey = c_nationkey)
    let supplier = scan(catalog, "supplier");
    let s_suppkey = supplier.schema().expect_index("s_suppkey");
    let s_nationkey = supplier.schema().expect_index("s_nationkey");
    let l_suppkey = idx(&j4, "l_suppkey");
    let c_nationkey_j4 = idx(&j4, "c_nationkey");
    let j5 = Box::new(HashJoin::new(
        supplier,
        j4,
        vec![s_suppkey, s_nationkey],
        vec![l_suppkey, c_nationkey_j4],
    )) as BoxedOp;

    // GROUP BY n_name, SUM(revenue)
    let n_name = idx(&j5, "n_name");
    let ep = idx(&j5, "l_extendedprice");
    let disc = idx(&j5, "l_discount");
    let agg = Box::new(HashAggregate::new(
        j5,
        vec![n_name],
        vec![AggSpec {
            func: AggFunc::Sum,
            input: revenue_expr(ep, disc),
            name: "revenue".to_string(),
        }],
    )) as BoxedOp;

    // ORDER BY revenue DESC
    let rev = idx(&agg, "revenue");
    Box::new(Sort::new(agg, vec![SortKey::desc(rev)]))
}

/// Helper: re-key a boxed operator by a named column (returns the same
/// operator; the key index is what the caller needs).
trait KeyedExt {
    fn into_keyed(self, key: &str) -> KeyedOp;
}

/// An operator whose column `key` has been resolved; used as a hash
/// join build side with `vec![0]`-style positional keys replaced by the
/// resolved index.
struct KeyedOp {
    op: BoxedOp,
    key_idx: usize,
}

impl KeyedExt for BoxedOp {
    fn into_keyed(self, key: &str) -> KeyedOp {
        let key_idx = self.schema().expect_index(key);
        KeyedOp { op: self, key_idx }
    }
}

impl HashJoin {
    /// Join with a named build key (internal plan-builder convenience).
    fn new_keyed(build: KeyedOp, probe: BoxedOp, probe_keys: Vec<usize>) -> Self {
        let k = build.key_idx;
        HashJoin::new(build.op, probe, vec![k], probe_keys)
    }
}

/// A deliberately inferior Q5 plan: joins `lineitem ⋈ orders` *before*
/// any filtering, producing the largest possible intermediate result.
/// Used by the energy-aware plan-choice studies (paper §2: "considering
/// the effect of different query plans for the energy versus response
/// time tradeoff").
pub fn q5_plan_late_filter(catalog: &Catalog, params: &Q5Params) -> BoxedOp {
    // orders ⋈ lineitem with no date pushdown.
    let orders = scan(catalog, "orders");
    let lineitem = scan(catalog, "lineitem");
    let l_orderkey = lineitem.schema().expect_index("l_orderkey");
    let j1 = Box::new(HashJoin::new_keyed(
        orders.into_keyed("o_orderkey"),
        lineitem,
        vec![l_orderkey],
    )) as BoxedOp;

    // Date filter only now, over the fat intermediate.
    let od = idx(&j1, "o_orderdate");
    let filtered = Box::new(Filter::new(
        j1,
        Expr::And(vec![
            Expr::cmp(CmpOp::Ge, Expr::col(od), Expr::date(params.date_from.0)),
            Expr::cmp(CmpOp::Lt, Expr::col(od), Expr::date(params.date_to.0)),
        ]),
    )) as BoxedOp;

    // ⋈ customer.
    let customer = scan(catalog, "customer");
    let c_custkey = customer.schema().expect_index("c_custkey");
    let j2 = Box::new(HashJoin::new_keyed(
        filtered.into_keyed("o_custkey"),
        customer,
        vec![c_custkey],
    )) as BoxedOp;

    // ⋈ supplier on (l_suppkey, c_nationkey).
    let supplier = scan(catalog, "supplier");
    let s_suppkey = supplier.schema().expect_index("s_suppkey");
    let s_nationkey = supplier.schema().expect_index("s_nationkey");
    let l_suppkey = idx(&j2, "l_suppkey");
    let c_nationkey = idx(&j2, "c_nationkey");
    let j3 = Box::new(HashJoin::new(
        supplier,
        j2,
        vec![s_suppkey, s_nationkey],
        vec![l_suppkey, c_nationkey],
    )) as BoxedOp;

    // ⋈ nation ⋈ region, filtering the region name last.
    let nation = scan(catalog, "nation");
    let n_nationkey = nation.schema().expect_index("n_nationkey");
    let j4 = Box::new(HashJoin::new_keyed(
        j3.into_keyed("s_nationkey"),
        nation,
        vec![n_nationkey],
    )) as BoxedOp;
    // Swap: nation-side first would be better; keep it probe-heavy.
    let region = scan(catalog, "region");
    let r_regionkey = region.schema().expect_index("r_regionkey");
    let j5 = Box::new(HashJoin::new_keyed(
        j4.into_keyed("n_regionkey"),
        region,
        vec![r_regionkey],
    )) as BoxedOp;
    let r_name = idx(&j5, "r_name");
    let filtered = Box::new(Filter::new(
        j5,
        Expr::cmp(CmpOp::Eq, Expr::col(r_name), Expr::str(&params.region)),
    )) as BoxedOp;

    let n_name = idx(&filtered, "n_name");
    let ep = idx(&filtered, "l_extendedprice");
    let disc = idx(&filtered, "l_discount");
    let agg = Box::new(HashAggregate::new(
        filtered,
        vec![n_name],
        vec![AggSpec {
            func: AggFunc::Sum,
            input: revenue_expr(ep, disc),
            name: "revenue".to_string(),
        }],
    )) as BoxedOp;
    let rev = idx(&agg, "revenue");
    Box::new(Sort::new(agg, vec![SortKey::desc(rev)]))
}

/// TPC-H Q5 as SQL text (compiles through the SQL front-end).
pub fn q5_sql(params: &Q5Params) -> String {
    format!(
        "SELECT n_name, SUM(l_extendedprice * (100 - l_discount) / 100) AS revenue \
         FROM customer, orders, lineitem, supplier, nation, region \
         WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
           AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
           AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
           AND r_name = '{}' \
           AND o_orderdate >= DATE '{}' AND o_orderdate < DATE '{}' \
         GROUP BY n_name ORDER BY revenue DESC",
        params.region,
        params.date_from.iso(),
        params.date_to.iso()
    )
}

/// TPC-H Q6: forecast revenue change (single-table scan + scalar agg).
pub fn q6_plan(catalog: &Catalog, year: i32, discount_pct: i64, max_qty: i64) -> BoxedOp {
    let li = scan(catalog, "lineitem");
    let shipdate = li.schema().expect_index("l_shipdate");
    let disc = li.schema().expect_index("l_discount");
    let qty = li.schema().expect_index("l_quantity");
    let ep = li.schema().expect_index("l_extendedprice");
    let from = eco_tpch::Date::year_start(year);
    let to = eco_tpch::Date::year_start(year + 1);
    let filtered = Box::new(Filter::new(
        li,
        Expr::And(vec![
            Expr::cmp(CmpOp::Ge, Expr::col(shipdate), Expr::date(from.0)),
            Expr::cmp(CmpOp::Lt, Expr::col(shipdate), Expr::date(to.0)),
            Expr::cmp(CmpOp::Ge, Expr::col(disc), Expr::int(discount_pct - 1)),
            Expr::cmp(CmpOp::Le, Expr::col(disc), Expr::int(discount_pct + 1)),
            Expr::cmp(CmpOp::Lt, Expr::col(qty), Expr::int(max_qty)),
        ]),
    )) as BoxedOp;
    Box::new(HashAggregate::new(
        filtered,
        vec![],
        vec![AggSpec {
            func: AggFunc::Sum,
            input: Expr::arith(
                ArithOp::Div,
                Expr::arith(ArithOp::Mul, Expr::col(ep), Expr::col(disc)),
                Expr::int(100),
            ),
            name: "revenue".to_string(),
        }],
    ))
}

/// TPC-H Q1: pricing summary report (single-table, grouped aggregates).
pub fn q1_plan(catalog: &Catalog, delta_days: i32) -> BoxedOp {
    let li = scan(catalog, "lineitem");
    let shipdate = li.schema().expect_index("l_shipdate");
    let rf = li.schema().expect_index("l_returnflag");
    let ls = li.schema().expect_index("l_linestatus");
    let qty = li.schema().expect_index("l_quantity");
    let ep = li.schema().expect_index("l_extendedprice");
    let disc = li.schema().expect_index("l_discount");
    let tax = li.schema().expect_index("l_tax");
    let cutoff = eco_tpch::Date::from_ymd(1998, 12, 1).plus_days(-delta_days);
    let filtered = Box::new(Filter::new(
        li,
        Expr::cmp(CmpOp::Le, Expr::col(shipdate), Expr::date(cutoff.0)),
    )) as BoxedOp;
    // charge = ep·(100−disc)·(100+tax)/10000
    let charge = Expr::arith(
        ArithOp::Div,
        Expr::arith(
            ArithOp::Mul,
            Expr::arith(
                ArithOp::Mul,
                Expr::col(ep),
                Expr::arith(ArithOp::Sub, Expr::int(100), Expr::col(disc)),
            ),
            Expr::arith(ArithOp::Add, Expr::int(100), Expr::col(tax)),
        ),
        Expr::int(10_000),
    );
    let agg = Box::new(HashAggregate::new(
        filtered,
        vec![rf, ls],
        vec![
            AggSpec {
                func: AggFunc::Sum,
                input: Expr::col(qty),
                name: "sum_qty".into(),
            },
            AggSpec {
                func: AggFunc::Sum,
                input: Expr::col(ep),
                name: "sum_base_price".into(),
            },
            AggSpec {
                func: AggFunc::Sum,
                input: revenue_expr(ep, disc),
                name: "sum_disc_price".into(),
            },
            AggSpec {
                func: AggFunc::Sum,
                input: charge,
                name: "sum_charge".into(),
            },
            AggSpec {
                func: AggFunc::Avg,
                input: Expr::col(qty),
                name: "avg_qty".into(),
            },
            AggSpec {
                func: AggFunc::Avg,
                input: Expr::col(ep),
                name: "avg_price".into(),
            },
            AggSpec {
                func: AggFunc::Avg,
                input: Expr::col(disc),
                name: "avg_disc".into(),
            },
            AggSpec {
                func: AggFunc::Count,
                input: Expr::col(qty),
                name: "count_order".into(),
            },
        ],
    )) as BoxedOp;
    let rf_out = idx(&agg, "l_returnflag");
    let ls_out = idx(&agg, "l_linestatus");
    Box::new(Sort::new(
        agg,
        vec![SortKey::asc(rf_out), SortKey::asc(ls_out)],
    ))
}

/// TPC-H Q3: shipping priority (customer ⋈ orders ⋈ lineitem, top-10).
pub fn q3_plan(catalog: &Catalog, segment: &str, cut: eco_tpch::Date) -> BoxedOp {
    let customer = scan(catalog, "customer");
    let c_mktsegment = customer.schema().expect_index("c_mktsegment");
    let cust = Box::new(Filter::new(
        customer,
        Expr::cmp(CmpOp::Eq, Expr::col(c_mktsegment), Expr::str(segment)),
    )) as BoxedOp;

    let orders_scan = scan(catalog, "orders");
    let o_orderdate = orders_scan.schema().expect_index("o_orderdate");
    let o_custkey = orders_scan.schema().expect_index("o_custkey");
    let orders = Box::new(Filter::new(
        orders_scan,
        Expr::cmp(CmpOp::Lt, Expr::col(o_orderdate), Expr::date(cut.0)),
    )) as BoxedOp;
    let j1 = Box::new(HashJoin::new_keyed(
        cust.into_keyed("c_custkey"),
        orders,
        vec![o_custkey],
    )) as BoxedOp;

    let lineitem = scan(catalog, "lineitem");
    let l_orderkey = lineitem.schema().expect_index("l_orderkey");
    let l_shipdate = lineitem.schema().expect_index("l_shipdate");
    let li = Box::new(Filter::new(
        lineitem,
        Expr::cmp(CmpOp::Gt, Expr::col(l_shipdate), Expr::date(cut.0)),
    )) as BoxedOp;
    let j2 = Box::new(HashJoin::new_keyed(
        j1.into_keyed("o_orderkey"),
        li,
        vec![l_orderkey],
    )) as BoxedOp;

    let okey = idx(&j2, "o_orderkey");
    let odate = idx(&j2, "o_orderdate");
    let oprio = idx(&j2, "o_shippriority");
    let ep = idx(&j2, "l_extendedprice");
    let disc = idx(&j2, "l_discount");
    let agg = Box::new(HashAggregate::new(
        j2,
        vec![okey, odate, oprio],
        vec![AggSpec {
            func: AggFunc::Sum,
            input: revenue_expr(ep, disc),
            name: "revenue".into(),
        }],
    )) as BoxedOp;
    let rev = idx(&agg, "revenue");
    let odate_out = idx(&agg, "o_orderdate");
    let sorted = Box::new(Sort::new(
        agg,
        vec![SortKey::desc(rev), SortKey::asc(odate_out)],
    )) as BoxedOp;
    Box::new(Limit::new(sorted, 10))
}

/// The QED unit query: `SELECT * FROM lineitem WHERE l_quantity = :v`.
pub fn selection_plan(catalog: &Catalog, query: &QedQuery) -> BoxedOp {
    let li = scan(catalog, "lineitem");
    let qty = li.schema().expect_index("l_quantity");
    Box::new(Filter::new(li, Expr::col_eq_int(qty, query.quantity)))
}

/// Index variant of the QED unit query: point-probe a B-tree on
/// `lineitem.l_quantity` instead of scanning. `None` when no such
/// index exists (the index-free default).
pub fn selection_plan_indexed(catalog: &Catalog, query: &QedQuery) -> Option<BoxedOp> {
    let entry = catalog.index_on("lineitem", "l_quantity")?;
    Some(Box::new(IxScan::point(
        catalog.expect("lineitem"),
        Arc::clone(&entry.index),
        Value::Int(query.quantity),
    )))
}

/// Sequential plan for `SELECT * FROM lineitem WHERE l_quantity
/// BETWEEN lo AND hi` — the selectivity-knob query of the
/// `index_crossover` experiment (quantity is uniform on 1..=50, so the
/// width of the range dials selectivity directly).
pub fn quantity_range_plan(catalog: &Catalog, lo: i64, hi: i64) -> BoxedOp {
    let li = scan(catalog, "lineitem");
    let qty = li.schema().expect_index("l_quantity");
    Box::new(Filter::new(
        li,
        Expr::And(vec![
            Expr::cmp(CmpOp::Ge, Expr::col(qty), Expr::int(lo)),
            Expr::cmp(CmpOp::Le, Expr::col(qty), Expr::int(hi)),
        ]),
    ))
}

/// Index variant of [`quantity_range_plan`]: one B-tree range probe.
/// `None` when `lineitem.l_quantity` is not indexed.
pub fn quantity_range_plan_indexed(catalog: &Catalog, lo: i64, hi: i64) -> Option<BoxedOp> {
    let entry = catalog.index_on("lineitem", "l_quantity")?;
    Some(Box::new(IxScan::range(
        catalog.expect("lineitem"),
        Arc::clone(&entry.index),
        IxBound::Inclusive(Value::Int(lo)),
        IxBound::Inclusive(Value::Int(hi)),
    )))
}

/// σ(l_orderkey BETWEEN lo AND hi) over lineitem, by sequential scan.
///
/// The clustered counterpart of [`quantity_range_plan`]: lineitem is
/// generated in orderkey order, so a key range selects a *contiguous*
/// band of pages. That makes this pair the canonical scan-vs-probe
/// crossover knob — the indexed variant touches only the band (as
/// random-priced index I/O) while this plan streams every page.
pub fn orderkey_range_plan(catalog: &Catalog, lo: i64, hi: i64) -> BoxedOp {
    let li = scan(catalog, "lineitem");
    let key = li.schema().expect_index("l_orderkey");
    Box::new(Filter::new(
        li,
        Expr::And(vec![
            Expr::cmp(CmpOp::Ge, Expr::col(key), Expr::int(lo)),
            Expr::cmp(CmpOp::Le, Expr::col(key), Expr::int(hi)),
        ]),
    ))
}

/// Index variant of [`orderkey_range_plan`]: one B-tree range probe on
/// `lineitem.l_orderkey`. `None` without the index.
pub fn orderkey_range_plan_indexed(catalog: &Catalog, lo: i64, hi: i64) -> Option<BoxedOp> {
    let entry = catalog.index_on("lineitem", "l_orderkey")?;
    Some(Box::new(IxScan::range(
        catalog.expect("lineitem"),
        Arc::clone(&entry.index),
        IxBound::Inclusive(Value::Int(lo)),
        IxBound::Inclusive(Value::Int(hi)),
    )))
}

/// Hash-join plan for the lineitems of one day's orders: σ(o_orderdate
/// = :day) orders ⋈ lineitem. The selective outer makes this the
/// canonical index-nested-loop candidate.
pub fn day_orders_lineitem_plan(catalog: &Catalog, day: eco_tpch::Date) -> BoxedOp {
    let orders_scan = scan(catalog, "orders");
    let o_orderdate = orders_scan.schema().expect_index("o_orderdate");
    let orders = Box::new(Filter::new(
        orders_scan,
        Expr::cmp(CmpOp::Eq, Expr::col(o_orderdate), Expr::date(day.0)),
    )) as BoxedOp;
    let lineitem = scan(catalog, "lineitem");
    let l_orderkey = lineitem.schema().expect_index("l_orderkey");
    Box::new(HashJoin::new_keyed(
        orders.into_keyed("o_orderkey"),
        lineitem,
        vec![l_orderkey],
    ))
}

/// Index nested-loop variant of [`day_orders_lineitem_plan`]: each
/// filtered order probes a B-tree on `lineitem.l_orderkey`. Same
/// output rows (orders ++ lineitem), different access path — the
/// hash plan scans all of lineitem once, this touches only matching
/// pages, as random index I/O. `None` without the index.
pub fn day_orders_lineitem_plan_indexed(catalog: &Catalog, day: eco_tpch::Date) -> Option<BoxedOp> {
    let entry = catalog.index_on("lineitem", "l_orderkey")?;
    let orders_scan = scan(catalog, "orders");
    let o_orderdate = orders_scan.schema().expect_index("o_orderdate");
    let o_orderkey = orders_scan.schema().expect_index("o_orderkey");
    let orders = Box::new(Filter::new(
        orders_scan,
        Expr::cmp(CmpOp::Eq, Expr::col(o_orderdate), Expr::date(day.0)),
    )) as BoxedOp;
    Some(Box::new(IxJoin::new(
        orders,
        o_orderkey,
        catalog.expect("lineitem"),
        Arc::clone(&entry.index),
    )))
}

/// The QED unit predicate over the lineitem schema (used by the merger).
pub fn selection_predicate(catalog: &Catalog, query: &QedQuery) -> Expr {
    let qty = catalog
        .expect("lineitem")
        .schema()
        .expect_index("l_quantity");
    Expr::col_eq_int(qty, query.quantity)
}

/// Reference evaluation of Q5 directly over generated rows — an
/// executor-independent oracle for correctness tests.
pub fn q5_reference(db: &eco_tpch::TpchDb, params: &Q5Params) -> Vec<(String, i64)> {
    use std::collections::HashMap;
    let region_key = db
        .region
        .iter()
        .find(|r| r.r_name == params.region)
        .map(|r| r.r_regionkey);
    let Some(region_key) = region_key else {
        return Vec::new();
    };
    let nations: HashMap<i64, &str> = db
        .nation
        .iter()
        .filter(|n| n.n_regionkey == region_key)
        .map(|n| (n.n_nationkey, n.n_name.as_str()))
        .collect();
    let cust_nation: HashMap<i64, i64> = db
        .customer
        .iter()
        .filter(|c| nations.contains_key(&c.c_nationkey))
        .map(|c| (c.c_custkey, c.c_nationkey))
        .collect();
    let order_custnation: HashMap<i64, i64> = db
        .orders
        .iter()
        .filter(|o| o.o_orderdate >= params.date_from && o.o_orderdate < params.date_to)
        .filter_map(|o| cust_nation.get(&o.o_custkey).map(|&n| (o.o_orderkey, n)))
        .collect();
    let supp_nation: HashMap<i64, i64> = db
        .supplier
        .iter()
        .map(|s| (s.s_suppkey, s.s_nationkey))
        .collect();
    let mut rev: HashMap<&str, i64> = HashMap::new();
    for l in &db.lineitem {
        let Some(&cn) = order_custnation.get(&l.l_orderkey) else {
            continue;
        };
        let Some(&sn) = supp_nation.get(&l.l_suppkey) else {
            continue;
        };
        if sn != cn {
            continue;
        }
        let name = nations[&cn];
        *rev.entry(name).or_insert(0) += l.revenue_cents();
    }
    let mut out: Vec<(String, i64)> = rev.into_iter().map(|(n, v)| (n.to_string(), v)).collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Project Q5-plan output rows into `(nation, revenue)` pairs for
/// comparison against [`q5_reference`].
pub fn q5_rows_to_pairs(rows: &[Tuple]) -> Vec<(String, i64)> {
    rows.iter()
        .map(|t| {
            (
                t[0].as_str().expect("n_name string").to_string(),
                t[1].as_int().expect("revenue int"),
            )
        })
        .collect()
}

/// Column type of the QED result rows (full lineitem tuples).
pub fn qed_result_type() -> ColumnType {
    ColumnType::Int
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecCtx;
    use crate::exec::execute;
    use eco_storage::{load_tpch, EngineKind};
    use eco_tpch::TpchGenerator;

    fn setup() -> (eco_tpch::TpchDb, Catalog) {
        let db = TpchGenerator::new(0.005).generate();
        let cat = load_tpch(&db, EngineKind::Memory, 0);
        (db, cat)
    }

    #[test]
    fn q5_matches_reference_oracle() {
        let (db, cat) = setup();
        for params in [Q5Params::new("ASIA", 1994), Q5Params::new("AMERICA", 1996)] {
            let mut plan = q5_plan(&cat, &params);
            let mut ctx = ExecCtx::new();
            let rows = execute(plan.as_mut(), &mut ctx);
            let got = q5_rows_to_pairs(&rows);
            let want = q5_reference(&db, &params);
            // Compare as multisets keyed by nation (sort order ties may
            // differ when revenues are equal).
            let mut got_sorted = got.clone();
            got_sorted.sort();
            let mut want_sorted = want.clone();
            want_sorted.sort();
            assert_eq!(got_sorted, want_sorted, "{params:?}");
            // Revenue-descending order.
            for w in got.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn q5_output_schema() {
        let (_, cat) = setup();
        let plan = q5_plan(&cat, &Q5Params::new("ASIA", 1994));
        assert_eq!(plan.schema().names(), vec!["n_name", "revenue"]);
    }

    #[test]
    fn q6_sums_discounted_revenue() {
        let (db, cat) = setup();
        let mut plan = q6_plan(&cat, 1994, 6, 24);
        let mut ctx = ExecCtx::new();
        let rows = execute(plan.as_mut(), &mut ctx);
        assert_eq!(rows.len(), 1);
        let got = rows[0][0].as_int().unwrap();
        let from = eco_tpch::Date::year_start(1994);
        let to = eco_tpch::Date::year_start(1995);
        let want: i64 = db
            .lineitem
            .iter()
            .filter(|l| {
                l.l_shipdate >= from
                    && l.l_shipdate < to
                    && (5..=7).contains(&l.l_discount)
                    && l.l_quantity < 24
            })
            .map(|l| l.l_extendedprice * l.l_discount / 100)
            .sum();
        assert_eq!(got, want);
    }

    #[test]
    fn q1_groups_by_flags() {
        let (db, cat) = setup();
        let mut plan = q1_plan(&cat, 90);
        let mut ctx = ExecCtx::new();
        let rows = execute(plan.as_mut(), &mut ctx);
        assert!(!rows.is_empty() && rows.len() <= 6, "{} groups", rows.len());
        // Count column equals a direct count.
        let cutoff = eco_tpch::Date::from_ymd(1998, 12, 1).plus_days(-90);
        let want: i64 = db
            .lineitem
            .iter()
            .filter(|l| l.l_shipdate <= cutoff)
            .count() as i64;
        let got: i64 = rows
            .iter()
            .map(|t| t.last().unwrap().as_int().unwrap())
            .sum();
        assert_eq!(got, want);
    }

    #[test]
    fn q3_returns_top_10_by_revenue() {
        let (_, cat) = setup();
        let mut plan = q3_plan(&cat, "BUILDING", eco_tpch::Date::from_ymd(1995, 3, 15));
        let mut ctx = ExecCtx::new();
        let rows = execute(plan.as_mut(), &mut ctx);
        assert!(rows.len() <= 10);
        let revs: Vec<i64> = rows.iter().map(|t| t[3].as_int().unwrap()).collect();
        for w in revs.windows(2) {
            assert!(w[0] >= w[1], "descending revenue");
        }
    }

    #[test]
    fn selection_plan_selects_only_quantity() {
        let (db, cat) = setup();
        let q = QedQuery { quantity: 17 };
        let mut plan = selection_plan(&cat, &q);
        let mut ctx = ExecCtx::new();
        let rows = execute(plan.as_mut(), &mut ctx);
        let want = db.lineitem.iter().filter(|l| l.l_quantity == 17).count();
        assert_eq!(rows.len(), want);
        let qty = cat.expect("lineitem").schema().expect_index("l_quantity");
        for t in &rows {
            assert_eq!(t[qty].as_int(), Some(17));
        }
    }

    #[test]
    fn indexed_variants_match_their_sequential_plans() {
        let db = TpchGenerator::new(0.004).generate();
        let cat = load_tpch(&db, EngineKind::Disk, 1 << 16);
        // Without indexes every variant declines.
        let q = QedQuery { quantity: 17 };
        assert!(selection_plan_indexed(&cat, &q).is_none());
        assert!(quantity_range_plan_indexed(&cat, 1, 5).is_none());
        let day = db.orders[0].o_orderdate;
        assert!(day_orders_lineitem_plan_indexed(&cat, day).is_none());

        cat.create_index("ix_li_qty", "lineitem", "l_quantity")
            .expect("qty index");
        cat.create_index("ix_li_ok", "lineitem", "l_orderkey")
            .expect("orderkey index");

        let run = |mut p: BoxedOp| {
            let mut ctx = ExecCtx::new();
            let rows = execute(p.as_mut(), &mut ctx);
            assert!(ctx.error().is_none());
            rows
        };
        // Point and range selections emit table order on both paths.
        assert_eq!(
            run(selection_plan_indexed(&cat, &q).expect("indexed")),
            run(selection_plan(&cat, &q))
        );
        assert_eq!(
            run(quantity_range_plan_indexed(&cat, 3, 7).expect("indexed")),
            run(quantity_range_plan(&cat, 3, 7))
        );
        // Join variants emit different row orders; compare as multisets.
        let mut a = run(day_orders_lineitem_plan_indexed(&cat, day).expect("indexed"));
        let mut b = run(day_orders_lineitem_plan(&cat, day));
        assert!(!b.is_empty(), "day {day:?} has lineitems");
        let key = |t: &Tuple| format!("{t:?}");
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn nonexistent_region_yields_empty() {
        let (_, cat) = setup();
        let mut plan = q5_plan(&cat, &Q5Params::new("ATLANTIS", 1994));
        let mut ctx = ExecCtx::new();
        assert!(execute(plan.as_mut(), &mut ctx).is_empty());
    }
}

#[cfg(test)]
mod late_filter_tests {
    use super::*;
    use crate::context::ExecCtx;
    use crate::exec::execute;
    use eco_storage::{load_tpch, EngineKind};
    use eco_tpch::TpchGenerator;

    #[test]
    fn late_filter_plan_gives_same_answer_with_more_work() {
        let db = TpchGenerator::new(0.004).generate();
        let cat = load_tpch(&db, EngineKind::Memory, 0);
        let params = Q5Params::new("ASIA", 1994);

        let mut good = q5_plan(&cat, &params);
        let mut gctx = ExecCtx::new();
        let good_rows = execute(good.as_mut(), &mut gctx);

        let mut bad = q5_plan_late_filter(&cat, &params);
        let mut bctx = ExecCtx::new();
        let bad_rows = execute(bad.as_mut(), &mut bctx);

        let mut a = q5_rows_to_pairs(&good_rows);
        a.sort();
        let mut b = q5_rows_to_pairs(&bad_rows);
        b.sort();
        assert_eq!(a, b, "plans must agree on the answer");
        assert!(
            bctx.cpu.cycles() > 1.5 * gctx.cpu.cycles(),
            "late filtering must do much more work: {} vs {}",
            bctx.cpu.cycles(),
            gctx.cpu.cycles()
        );
    }

    #[test]
    fn q5_sql_text_compiles_and_matches_hand_plan() {
        let db = TpchGenerator::new(0.004).generate();
        let cat = load_tpch(&db, EngineKind::Memory, 0);
        let params = Q5Params::new("AMERICA", 1996);
        let mut sql_plan = crate::sql::compile(&cat, &q5_sql(&params)).expect("compiles");
        let mut sctx = ExecCtx::new();
        let sql_rows = execute(sql_plan.as_mut(), &mut sctx);
        let mut hand = q5_plan(&cat, &params);
        let mut hctx = ExecCtx::new();
        let hand_rows = execute(hand.as_mut(), &mut hctx);
        let mut a = q5_rows_to_pairs(&sql_rows);
        a.sort();
        let mut b = q5_rows_to_pairs(&hand_rows);
        b.sort();
        assert_eq!(a, b);
    }
}
