//! Execution chunks: a shared [`DataChunk`] window plus an optional
//! *selection vector*.
//!
//! Columnar operators pass [`Chunk`]s instead of `Vec<Tuple>` batches.
//! A chunk never copies column data on its way through a pipeline:
//! scans emit `Arc`-shared windows over a table's columnar mirror,
//! filters refine the selection vector (which rows are live) without
//! touching the data, and only projections / pipeline breakers build
//! new columns. Rows are materialized back into `Tuple`s as late as
//! possible — at blocking operators that inherently need rows (sort,
//! hash build) and at the very top of the plan.

use std::ops::Range;
use std::sync::Arc;

use eco_storage::{DataChunk, EncodedChunk, Tuple};

/// A view over a run of rows: shared column data, a `[start, end)` row
/// window, and an optional selection vector of *absolute* row indices
/// into the data (always sorted ascending, always within the window).
/// `sel: None` means every row of the window is live.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// The shared column data.
    pub data: Arc<DataChunk>,
    /// First live row (inclusive) when `sel` is `None`.
    pub start: usize,
    /// One-past-last live row when `sel` is `None`.
    pub end: usize,
    /// Optional selection: the live rows, ascending.
    pub sel: Option<Vec<u32>>,
    /// Encoded mirror of `data` (same rows, same indices), attached by
    /// scans under compressed pricing (ledger schema v3). Kernels that
    /// find a useful encoding here run directly on the compressed form
    /// (dictionary-id compares, run-at-a-time filtering/aggregation)
    /// and fall back to `data` otherwise. `None` under raw pricing —
    /// the raw path never looks at it.
    pub enc: Option<Arc<EncodedChunk>>,
}

/// The live rows of a [`Chunk`], for kernel loops.
#[derive(Debug, Clone, Copy)]
pub enum Rows<'a> {
    /// A dense window.
    Range(usize, usize),
    /// An explicit selection.
    Sel(&'a [u32]),
}

impl Rows<'_> {
    /// Number of live rows.
    pub fn len(&self) -> usize {
        match self {
            Rows::Range(s, e) => e - s,
            Rows::Sel(s) => s.len(),
        }
    }

    /// True when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Invoke `f(k, i)` for every live row: `k` is the ordinal within
    /// this row set (0-based), `i` the absolute row index into the
    /// chunk's data. Monomorphized per call site, so kernels pay no
    /// dispatch per row.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(usize, usize)) {
        match self {
            Rows::Range(s, e) => {
                for (k, i) in (*s..*e).enumerate() {
                    f(k, i);
                }
            }
            Rows::Sel(sel) => {
                for (k, &i) in sel.iter().enumerate() {
                    f(k, i as usize);
                }
            }
        }
    }

    /// The absolute row index of ordinal `k`.
    #[inline]
    pub fn at(&self, k: usize) -> usize {
        match self {
            Rows::Range(s, _) => s + k,
            Rows::Sel(sel) => sel[k] as usize,
        }
    }

    /// Collect the absolute indices into a vector.
    pub fn to_indices(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.len());
        self.for_each(|_, i| v.push(i as u32));
        v
    }
}

impl Chunk {
    /// A chunk covering all of `data`.
    pub fn dense(data: Arc<DataChunk>) -> Self {
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
            sel: None,
            enc: None,
        }
    }

    /// A chunk covering rows `[range.start, range.end)` of `data`.
    pub fn window(data: Arc<DataChunk>, range: Range<usize>) -> Self {
        debug_assert!(range.end <= data.len());
        Self {
            data,
            start: range.start,
            end: range.end,
            sel: None,
            enc: None,
        }
    }

    /// Attach an encoded mirror of the chunk's data (builder style).
    /// Row indices in the mirror must align with `data`.
    pub fn with_enc(mut self, enc: Arc<EncodedChunk>) -> Self {
        debug_assert_eq!(enc.rows(), self.data.len());
        self.enc = Some(enc);
        self
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.end - self.start,
        }
    }

    /// True when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live rows as a [`Rows`] view.
    pub fn rows(&self) -> Rows<'_> {
        match &self.sel {
            Some(s) => Rows::Sel(s),
            None => Rows::Range(self.start, self.end),
        }
    }

    /// Replace the selection (indices must be ascending and within the
    /// window; callers produce them by refining [`Chunk::rows`]).
    pub fn with_sel(mut self, sel: Vec<u32>) -> Self {
        self.sel = Some(sel);
        self
    }

    /// Materialize every live row into `out`, in row order — the late
    /// materialization point of the columnar path.
    pub fn to_tuples(&self, out: &mut Vec<Tuple>) {
        out.reserve(self.len());
        self.rows().for_each(|_, i| out.push(self.data.row(i)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_storage::{ColumnType, Schema, Value};

    fn chunk() -> Arc<DataChunk> {
        let schema = Schema::new(&[("v", ColumnType::Int)]);
        let rows: Vec<Tuple> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        Arc::new(DataChunk::from_rows(&schema, &rows))
    }

    #[test]
    fn dense_window_and_selection_lengths() {
        let data = chunk();
        assert_eq!(Chunk::dense(Arc::clone(&data)).len(), 10);
        let w = Chunk::window(Arc::clone(&data), 2..7);
        assert_eq!(w.len(), 5);
        assert_eq!(w.rows().to_indices(), vec![2, 3, 4, 5, 6]);
        let s = w.with_sel(vec![3, 6]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.rows().at(1), 6);
    }

    #[test]
    fn materializes_selected_rows_in_order() {
        let c = Chunk::dense(chunk()).with_sel(vec![1, 4, 9]);
        let mut out = Vec::new();
        c.to_tuples(&mut out);
        assert_eq!(
            out,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(4)],
                vec![Value::Int(9)],
            ]
        );
    }

    #[test]
    fn empty_selection_is_empty() {
        let c = Chunk::dense(chunk()).with_sel(vec![]);
        assert!(c.is_empty());
        let mut out = Vec::new();
        c.to_tuples(&mut out);
        assert!(out.is_empty());
    }
}
