//! The DBMS server facade: engine profiles, admission/parse accounting,
//! client round trips, and the execute-once/price-many workflow.
//!
//! Two [`EngineProfile`]s stand in for the paper's systems under test:
//!
//! * [`EngineProfile::MemoryEngine`] — MySQL 5.1 with the `MEMORY`
//!   storage engine (§3.3: "we used the memory storage engine of MySQL
//!   to stress the CPU"): heap tables, tiny client gaps, near-100 %
//!   CPU utilization.
//! * [`EngineProfile::CommercialDisk`] — the unnamed commercial DBMS:
//!   paged tables behind a buffer pool, heavier client/server round
//!   trips, and residual warm-run disk traffic (§3.5 observes the disk
//!   stays active even when the working set fits in memory).
//!
//! Client round trips are *frequency-independent* wall time (the paper
//! leaves SpeedStep free to down-clock during them); their length is
//! sized relative to the stock-setting execution time so experiments
//! remain meaningful across scale factors.

use eco_query::context::ExecCtx;
use eco_query::error::ExecError;
use eco_query::exec::{execute_parallel, ExecEngine};
use eco_query::mqo::{split_results, MergeError, MergedSelection};
use eco_query::ops::BoxedOp;
use eco_query::plans;
use eco_query::sql::{execute_dml, DmlOutcome, Statement};
use eco_simhw::fault::FaultPlan;
use eco_simhw::machine::{Machine, MachineConfig, Measurement};
use eco_simhw::multicore::{MultiCoreMachine, MultiCoreMeasurement};
use eco_simhw::trace::{DiskWork, OpClass, Phase, PhaseKind, PricingMode, WorkTrace};
use eco_storage::{load_tpch, Catalog, EngineKind, Tuple, Value, WalError, WalRecord, WriteAheadLog};
use eco_tpch::{q5_workload, Q5Params, QedQuery, TpchDb, TpchGenerator};
use parking_lot::Mutex;

/// Which of the paper's two systems this database emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineProfile {
    /// MySQL `MEMORY`-engine profile: CPU-bound, minimal gaps.
    MemoryEngine,
    /// Commercial disk-DBMS profile: buffer pool, bigger round trips,
    /// light residual disk traffic when warm.
    CommercialDisk,
}

impl EngineProfile {
    /// Storage engine used by this profile.
    pub fn engine_kind(self) -> EngineKind {
        match self {
            EngineProfile::MemoryEngine => EngineKind::Memory,
            EngineProfile::CommercialDisk => EngineKind::Disk,
        }
    }

    /// Client round-trip time as a fraction of the statement's
    /// stock-setting busy time.
    pub fn gap_fraction(self) -> f64 {
        match self {
            // Thin client loop against a local memory engine.
            EngineProfile::MemoryEngine => 0.06,
            // JDBC against the commercial server: result marshalling,
            // statement handling, OS scheduling.
            EngineProfile::CommercialDisk => 0.85,
        }
    }

    /// Warm-run residual disk traffic: one page re-read per this many
    /// buffer pool hits (None = silent when warm).
    pub fn warm_reread_every(self) -> Option<u64> {
        match self {
            EngineProfile::MemoryEngine => None,
            EngineProfile::CommercialDisk => Some(2500),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineProfile::MemoryEngine => "mysql-memory",
            EngineProfile::CommercialDisk => "commercial-disk",
        }
    }
}

/// A typed server-side statement failure.
///
/// A malformed statement is a *session* error: the session layer
/// (`eco-server`) returns it to the submitting session; the scheduler
/// and every other in-flight session keep running. Before this type,
/// the execute path panicked on malformed batches, so one bad
/// statement could take down the whole server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The statement batch could not be merged (empty batch, missing
    /// table).
    Merge(MergeError),
    /// The statement's SQL failed to lex, parse or bind.
    Sql(eco_query::sql::SqlError),
    /// `CREATE INDEX` was rejected by the catalog: duplicate name,
    /// unknown table or column, or a memory-engine table (secondary
    /// indexes are paged structures over the disk engine).
    Index(eco_storage::IndexError),
    /// The statement was rejected by admission control (server over
    /// its energy/backlog knee).
    Shed {
        /// Statements already queued when this one was rejected.
        queued: usize,
    },
    /// Execution hit an unrecoverable disk fault (a page whose retry
    /// budget was exhausted — see [`ExecError`]). Fails only the
    /// statement (and its owning session); the server keeps serving.
    Io(ExecError),
    /// The write path failed: the write-ahead log hit its installed
    /// crash point, an fsync failed, or recovery found the log
    /// unreplayable (see [`WalError`]). Mutations stop until
    /// [`EcoDb::recover`] runs; reads keep serving.
    Wal(WalError),
    /// The statement is not a batchable selection. The QED batch path
    /// accepts only single-predicate selections; everything else
    /// (ad-hoc SQL, DML) dispatches solo. Consumers that require the
    /// selection variant get this typed rejection instead of a panic.
    NotSelection {
        /// Debug rendering of the offending statement.
        statement: String,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Merge(e) => write!(f, "merge error: {e}"),
            ServerError::Sql(e) => write!(f, "SQL error: {e}"),
            ServerError::Index(e) => write!(f, "index error: {e}"),
            ServerError::Shed { queued } => {
                write!(f, "admission control shed the statement ({queued} queued)")
            }
            ServerError::Io(e) => write!(f, "I/O error: {e}"),
            ServerError::Wal(e) => write!(f, "WAL error: {e}"),
            ServerError::NotSelection { statement } => {
                write!(f, "statement is not a batchable selection: {statement}")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Merge(e) => Some(e),
            ServerError::Sql(e) => Some(e),
            ServerError::Index(e) => Some(e),
            ServerError::Shed { .. } => None,
            ServerError::Io(e) => Some(e),
            ServerError::Wal(e) => Some(e),
            ServerError::NotSelection { .. } => None,
        }
    }
}

impl From<WalError> for ServerError {
    fn from(e: WalError) -> Self {
        ServerError::Wal(e)
    }
}

impl From<MergeError> for ServerError {
    fn from(e: MergeError) -> Self {
        ServerError::Merge(e)
    }
}

impl From<eco_query::sql::SqlError> for ServerError {
    fn from(e: eco_query::sql::SqlError) -> Self {
        ServerError::Sql(e)
    }
}

impl From<ExecError> for ServerError {
    fn from(e: ExecError) -> Self {
        ServerError::Io(e)
    }
}

impl From<eco_storage::IndexError> for ServerError {
    fn from(e: eco_storage::IndexError) -> Self {
        ServerError::Index(e)
    }
}

/// Approximate statement token counts (drive parse/plan cost).
fn parse_tokens(kind: StatementKind) -> u64 {
    match kind {
        StatementKind::Q5 => 64,
        StatementKind::Q1 => 36,
        StatementKind::Q3 => 48,
        StatementKind::Q6 => 30,
        StatementKind::Selection => 12,
        StatementKind::MergedSelection(k) => 12 + 3 * k as u64,
    }
}

/// Statement kinds known to the facade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementKind {
    /// TPC-H Q5.
    Q5,
    /// TPC-H Q1.
    Q1,
    /// TPC-H Q3.
    Q3,
    /// TPC-H Q6.
    Q6,
    /// Single `l_quantity` selection (QED unit).
    Selection,
    /// A QED-merged selection of `k` predicates.
    MergedSelection(usize),
}

/// Result of running one statement (or workload) under a configuration.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Result rows.
    pub rows: Vec<Tuple>,
    /// The work trace (reusable: re-price under other configs).
    pub trace: WorkTrace,
    /// The measurement under the requested configuration.
    pub measurement: Measurement,
}

/// Result of running one statement (or workload) morsel-parallel
/// across cores.
#[derive(Debug, Clone)]
pub struct ParallelQueryRun {
    /// Result rows — identical to the serial rows.
    pub rows: Vec<Tuple>,
    /// One work trace per core (reusable: re-price under other
    /// configs or core counts via [`MultiCoreMachine::measure`]).
    /// Their merged ledger is bit-identical to the serial trace.
    pub core_traces: Vec<WorkTrace>,
    /// The multi-core measurement under the requested configuration.
    pub measurement: MultiCoreMeasurement,
}

/// The write-ahead log plus the transaction counter that frames it.
/// One mutex over both: writers serialize on the log anyway, and the
/// commit marker must carry the next id atomically with its append.
#[derive(Debug)]
struct WalState {
    log: WriteAheadLog,
    next_txn: u64,
}

/// What a crash-recovery pass found and rebuilt (see [`EcoDb::recover`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transaction ids replayed, in commit order.
    pub committed_txns: Vec<u64>,
    /// Redo records re-applied (commit markers excluded).
    pub records_replayed: usize,
    /// Whether the log image ended in a torn (partially written) record
    /// — trimmed, never replayed.
    pub torn_tail: bool,
    /// Records that were appended but never covered by a commit marker
    /// — discarded, never replayed.
    pub uncommitted_records: usize,
    /// Secondary indexes re-created over the recovered tables.
    pub indexes_rebuilt: usize,
}

/// The ecoDB server: a catalog + machine + profile.
pub struct EcoDb {
    profile: EngineProfile,
    scale: f64,
    source: TpchDb,
    catalog: Catalog,
    machine: Machine,
    engine: ExecEngine,
    pricing: PricingMode,
    wal: Mutex<WalState>,
}

impl EcoDb {
    /// Open a TPC-H database at `scale` under the given profile
    /// (deterministic default seed).
    pub fn tpch(profile: EngineProfile, scale: f64) -> Self {
        Self::tpch_seeded(profile, scale, TpchGenerator::default().seed)
    }

    /// Open with an explicit generator seed.
    pub fn tpch_seeded(profile: EngineProfile, scale: f64, seed: u64) -> Self {
        let source = TpchGenerator::with_seed(scale, seed).generate();
        // Pool sized to hold everything: the paper notes "the size of
        // the raw tables is less than the main memory capacity".
        let catalog = load_tpch(&source, profile.engine_kind(), 1 << 22);
        catalog
            .pool()
            .set_warm_reread_every(profile.warm_reread_every());
        Self {
            profile,
            scale,
            source,
            catalog,
            machine: Machine::paper_sut(),
            engine: ExecEngine::Batch,
            pricing: PricingMode::Raw,
            wal: Mutex::new(WalState {
                log: WriteAheadLog::new(),
                next_txn: 1,
            }),
        }
    }

    /// The engine profile.
    pub fn profile(&self) -> EngineProfile {
        self.profile
    }

    /// The execution engine driving statements (default
    /// [`ExecEngine::Batch`]).
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Same database with a different execution engine (builder style).
    ///
    /// Because scalar, batch and columnar execution produce bit-identical
    /// energy ledgers, every PVC/QED sweep and paper grid can be re-run
    /// under [`ExecEngine::Columnar`] and yields the same figures —
    /// only the wall-clock cost of *producing* the traces drops.
    pub fn with_engine(mut self, engine: ExecEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Switch the execution engine in place.
    pub fn set_engine(&mut self, engine: ExecEngine) {
        self.engine = engine;
    }

    /// The energy-pricing mode driving statements (default
    /// [`PricingMode::Raw`]).
    pub fn pricing(&self) -> PricingMode {
        self.pricing
    }

    /// Same database with a different pricing mode (builder style).
    ///
    /// Unlike [`EcoDb::with_engine`] this is *not* a pure throughput
    /// knob: under [`PricingMode::Compressed`] scans price *encoded*
    /// byte counts as memory traffic and dictionary-reading kernels
    /// charge `DictLookup` (ledger schema v3), so ledgers differ from
    /// raw mode by design. Raw mode stays bit-identical to pre-v3.
    pub fn with_pricing(mut self, pricing: PricingMode) -> Self {
        self.pricing = pricing;
        self
    }

    /// Switch the pricing mode in place.
    pub fn set_pricing(&mut self, pricing: PricingMode) {
        self.pricing = pricing;
    }

    /// A fresh [`ExecCtx`] configured for this database's engine and
    /// pricing mode.
    fn exec_ctx(&self) -> ExecCtx {
        ExecCtx::new()
            .with_columnar(self.engine == ExecEngine::Columnar)
            .with_pricing(self.pricing)
    }

    /// The scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The simulated machine (for custom measurements).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The catalog (for custom plans).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The generated source rows (reference oracles in tests).
    pub fn source(&self) -> &TpchDb {
        &self.source
    }

    /// Model a reboot: drop the buffer pool (next run is cold).
    /// No-op for the memory engine.
    pub fn flush_cache(&self) {
        self.catalog.pool().flush();
    }

    /// Install a deterministic disk-fault schedule (see [`FaultPlan`]).
    /// Faults fire on buffer-pool misses: transient faults cost retry
    /// I/O and backoff (new v2 ledger classes, zero when fault-free);
    /// permanent faults surface as [`ServerError::Io`] on the fallible
    /// statement paths. [`FaultPlan::none`] (the default) disables
    /// injection entirely.
    ///
    /// A plan carrying a [`WalCrash`](eco_simhw::fault::WalCrash)
    /// additionally arms the write-ahead log's crash point: the write
    /// path dies at the scheduled append or fsync with
    /// [`ServerError::Wal`], after which [`EcoDb::recover`] rebuilds
    /// the committed-prefix state.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.wal.lock().log.set_crash(plan.wal_crash());
        self.catalog.pool().set_fault_plan(plan);
    }

    /// Same database with a fault schedule installed (builder style).
    pub fn with_fault_plan(self, plan: FaultPlan) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// The installed fault schedule.
    pub fn fault_plan(&self) -> FaultPlan {
        self.catalog.pool().fault_plan()
    }

    /// Pre-warm the buffer pool by running the 10-query Q5 workload
    /// once, discarding the trace. Tolerates injected faults (a
    /// permanently unreadable page leaves that page cold; everything
    /// else still warms).
    pub fn warm_up(&self) {
        for params in q5_workload() {
            let _ = self.try_trace_statement(
                StatementKind::Q5,
                plans::q5_plan(&self.catalog, &params),
                &params.label(),
            );
        }
    }

    // --- trace builders (execute once, price under any config) -----------

    /// Execute a plan as one client statement: a round-trip gap phase
    /// followed by an execute phase (parse + plan work included).
    /// Panics on a disk fault — the infallible tracers are for
    /// fault-free use; fault-injected servers go through the `try_*`
    /// paths.
    fn trace_statement(
        &self,
        kind: StatementKind,
        plan: BoxedOp,
        label: &str,
    ) -> (Vec<Tuple>, WorkTrace) {
        self.try_trace_statement(kind, plan, label)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::trace_statement`]: a page read whose retry
    /// budget is exhausted comes back as [`ServerError::Io`] instead of
    /// a panic, failing only this statement.
    fn try_trace_statement(
        &self,
        kind: StatementKind,
        mut plan: BoxedOp,
        label: &str,
    ) -> Result<(Vec<Tuple>, WorkTrace), ServerError> {
        let mut ctx = self.exec_ctx();
        ctx.charge(OpClass::Parse, parse_tokens(kind));
        let rows = self.engine.execute(plan.as_mut(), &mut ctx);
        if let Some(e) = ctx.take_error() {
            return Err(ServerError::Io(e));
        }
        let exec_phase = ctx.take_phase(PhaseKind::Execute, label);
        let mut trace = WorkTrace::new();
        trace.push(self.gap_before(&exec_phase));
        trace.push(exec_phase);
        Ok((rows, trace))
    }

    /// The client round-trip gap preceding an execution phase.
    fn gap_before(&self, exec_phase: &Phase) -> Phase {
        let busy = self.machine.stock_busy_seconds(exec_phase);
        let gap_ns = (busy * self.profile.gap_fraction() * 1e9).round() as u64;
        Phase::client_gap(gap_ns.max(1))
    }

    /// A multi-core view of this database's machine.
    pub fn multicore(&self, cores: usize) -> MultiCoreMachine {
        MultiCoreMachine {
            machine: self.machine.clone(),
            cores,
        }
    }

    /// Execute a plan morsel-parallel as one client statement,
    /// returning per-core traces. Core 0 (the coordinator) carries the
    /// client round-trip gap — sized from the statement's *total* work,
    /// since the round trip does not shrink with intra-query
    /// parallelism — plus all serial work; cores 1.. carry their
    /// workers' shares. The merged ledger equals the serial trace's.
    fn trace_statement_cores(
        &self,
        kind: StatementKind,
        mut plan: BoxedOp,
        label: &str,
        workers: usize,
    ) -> (Vec<Tuple>, Vec<WorkTrace>) {
        assert!(workers >= 1, "need at least one worker");
        // Workers run batch or columnar pipelines per the engine knob
        // (a Scalar engine falls back to batch pipelines here — the
        // morsel driver is inherently batched).
        let mut ctx = self.exec_ctx().with_workers(workers);
        ctx.charge(OpClass::Parse, parse_tokens(kind));
        let rows = execute_parallel(plan.as_mut(), &mut ctx, workers);
        if let Some(e) = ctx.take_error() {
            panic!("{}", ServerError::Io(e));
        }
        let phases = ctx.take_core_phases(workers, label);
        (rows, self.assemble_core_traces(phases, None))
    }

    /// Turn per-core execute phases into per-core traces: the client
    /// round-trip gap — sized from the statement's *total* stock busy
    /// time, since the round trip does not shrink with intra-query
    /// parallelism — lands on core 0, as does the optional trailing
    /// client phase (e.g. the QED result split).
    fn assemble_core_traces(
        &self,
        phases: Vec<Phase>,
        core0_tail: Option<Phase>,
    ) -> Vec<WorkTrace> {
        let mut combined = Phase::execute("combined");
        for p in &phases {
            combined.cpu.merge(&p.cpu);
            combined.mem_stream_bytes += p.mem_stream_bytes;
            combined.mem_random_accesses += p.mem_random_accesses;
            combined.disk.merge(&p.disk);
        }
        let gap = self.gap_before(&combined);

        phases
            .into_iter()
            .enumerate()
            .map(|(core, phase)| {
                let mut t = WorkTrace::new();
                if core == 0 {
                    t.push(gap.clone());
                }
                t.push(phase);
                if core == 0 {
                    if let Some(tail) = &core0_tail {
                        t.push(tail.clone());
                    }
                }
                t
            })
            .collect()
    }

    /// Trace one TPC-H Q5 instance across `workers` cores.
    pub fn trace_q5_cores(
        &self,
        params: &Q5Params,
        workers: usize,
    ) -> (Vec<Tuple>, Vec<WorkTrace>) {
        self.trace_statement_cores(
            StatementKind::Q5,
            plans::q5_plan(&self.catalog, params),
            &params.label(),
            workers,
        )
    }

    /// Trace the ten-query Q5 PVC workload across `workers` cores
    /// (per-core traces concatenated statement by statement).
    pub fn trace_q5_workload_cores(&self, workers: usize) -> (Vec<Vec<Tuple>>, Vec<WorkTrace>) {
        let mut all_rows = Vec::with_capacity(10);
        let mut core_traces: Vec<WorkTrace> = (0..workers).map(|_| WorkTrace::new()).collect();
        for params in q5_workload() {
            let (rows, traces) = self.trace_q5_cores(&params, workers);
            all_rows.push(rows);
            for (acc, t) in core_traces.iter_mut().zip(traces) {
                acc.extend(t);
            }
        }
        (all_rows, core_traces)
    }

    /// Trace TPC-H Q6 across `workers` cores.
    pub fn trace_q6_cores(
        &self,
        year: i32,
        discount_pct: i64,
        max_qty: i64,
        workers: usize,
    ) -> (Vec<Tuple>, Vec<WorkTrace>) {
        self.trace_statement_cores(
            StatementKind::Q6,
            plans::q6_plan(&self.catalog, year, discount_pct, max_qty),
            "Q6",
            workers,
        )
    }

    /// Trace a single QED selection across `workers` cores.
    pub fn trace_selection_cores(
        &self,
        q: &QedQuery,
        workers: usize,
    ) -> (Vec<Tuple>, Vec<WorkTrace>) {
        self.trace_statement_cores(
            StatementKind::Selection,
            plans::selection_plan(&self.catalog, q),
            &q.label(),
            workers,
        )
    }

    /// Trace a merged QED batch across `workers` cores: the disjunctive
    /// scan runs morsel-parallel; the client-side split (and the round
    /// trip) stay on core 0.
    pub fn trace_merged_selection_cores(
        &self,
        queries: &[QedQuery],
        short_circuit: bool,
        workers: usize,
    ) -> (Vec<Vec<Tuple>>, Vec<WorkTrace>) {
        self.try_trace_merged_selection_cores(queries, short_circuit, workers)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::trace_merged_selection_cores`]: malformed
    /// batches come back as a typed [`ServerError`] instead of a panic,
    /// so a session layer can reject them without dying.
    pub fn try_trace_merged_selection_cores(
        &self,
        queries: &[QedQuery],
        short_circuit: bool,
        workers: usize,
    ) -> Result<(Vec<Vec<Tuple>>, Vec<WorkTrace>), ServerError> {
        self.merged_selection_traces(queries, short_circuit, Some(workers))
    }

    /// The one shared merged-batch path (offline QED replay *and* the
    /// online batcher in `eco-server` price through here): validate and
    /// build the [`MergedSelection`], charge the merged parse, run the
    /// disjunctive scan (serially when `workers` is `None`,
    /// morsel-parallel otherwise), split results per query on the
    /// client, and assemble gap/execute/split phases into traces.
    ///
    /// The serial branch reproduces the historical single-trace layout
    /// (gap, `qed×k` execute, split) byte-for-byte, so every offline
    /// QED figure is unchanged by routing through this function.
    fn merged_selection_traces(
        &self,
        queries: &[QedQuery],
        short_circuit: bool,
        workers: Option<usize>,
    ) -> Result<(Vec<Vec<Tuple>>, Vec<WorkTrace>), ServerError> {
        let mut ctx = if short_circuit {
            ExecCtx::new()
        } else {
            ExecCtx::exhaustive()
        }
        .with_columnar(self.engine == ExecEngine::Columnar)
        .with_pricing(self.pricing);
        ctx.charge(
            OpClass::Parse,
            parse_tokens(StatementKind::MergedSelection(queries.len())),
        );
        let mut merged = MergedSelection::try_new(&self.catalog, queries)?;
        let label = format!("qed×{}", queries.len());

        match workers {
            None => {
                let tagged = merged.run(&mut ctx);
                if let Some(e) = ctx.take_error() {
                    return Err(ServerError::Io(e));
                }
                let exec_phase = ctx.take_phase(PhaseKind::Execute, label);

                // Application-side split.
                let mut client = ExecCtx::new();
                let split = split_results(tagged, queries.len(), &mut client);
                let split_phase = client.take_phase(PhaseKind::ClientCompute, "qed split");

                let mut trace = WorkTrace::new();
                trace.push(self.gap_before(&exec_phase));
                trace.push(exec_phase);
                trace.push(split_phase);
                Ok((split, vec![trace]))
            }
            Some(workers) => {
                let tagged = merged.run_parallel(&mut ctx, workers);
                if let Some(e) = ctx.take_error() {
                    return Err(ServerError::Io(e));
                }
                let phases = ctx.take_core_phases(workers, &label);

                // Application-side split, on the client (core 0).
                let mut client = ExecCtx::new();
                let split = split_results(tagged, queries.len(), &mut client);
                let split_phase = client.take_phase(PhaseKind::ClientCompute, "qed split");

                Ok((split, self.assemble_core_traces(phases, Some(split_phase))))
            }
        }
    }

    /// Run one Q6 morsel-parallel under a per-core configuration.
    pub fn run_q6_cores(
        &self,
        year: i32,
        discount_pct: i64,
        max_qty: i64,
        workers: usize,
        config: MachineConfig,
    ) -> ParallelQueryRun {
        let (rows, core_traces) = self.trace_q6_cores(year, discount_pct, max_qty, workers);
        let measurement = self
            .multicore(workers)
            .measure_uniform(&core_traces, &config);
        ParallelQueryRun {
            rows,
            core_traces,
            measurement,
        }
    }

    /// Run the ten-query Q5 PVC workload morsel-parallel.
    pub fn run_q5_workload_cores(&self, workers: usize, config: MachineConfig) -> ParallelQueryRun {
        let (rows, core_traces) = self.trace_q5_workload_cores(workers);
        let measurement = self
            .multicore(workers)
            .measure_uniform(&core_traces, &config);
        ParallelQueryRun {
            rows: rows.into_iter().flatten().collect(),
            core_traces,
            measurement,
        }
    }

    /// Trace one TPC-H Q5 instance.
    pub fn trace_q5(&self, params: &Q5Params) -> (Vec<Tuple>, WorkTrace) {
        self.trace_statement(
            StatementKind::Q5,
            plans::q5_plan(&self.catalog, params),
            &params.label(),
        )
    }

    /// Trace the paper's full PVC workload: ten Q5 instances
    /// back-to-back, each with its client round trip.
    pub fn trace_q5_workload(&self) -> (Vec<Vec<Tuple>>, WorkTrace) {
        let mut all_rows = Vec::with_capacity(10);
        let mut trace = WorkTrace::new();
        for params in q5_workload() {
            let (rows, t) = self.trace_q5(&params);
            all_rows.push(rows);
            trace.extend(t);
        }
        (all_rows, trace)
    }

    /// Trace a single QED selection.
    pub fn trace_selection(&self, q: &QedQuery) -> (Vec<Tuple>, WorkTrace) {
        self.trace_statement(
            StatementKind::Selection,
            plans::selection_plan(&self.catalog, q),
            &q.label(),
        )
    }

    /// Fallible [`Self::trace_selection`]: an unrecoverable disk fault
    /// comes back as [`ServerError::Io`], failing only this statement.
    pub fn try_trace_selection(
        &self,
        q: &QedQuery,
    ) -> Result<(Vec<Tuple>, WorkTrace), ServerError> {
        self.try_trace_statement(
            StatementKind::Selection,
            plans::selection_plan(&self.catalog, q),
            &q.label(),
        )
    }

    /// Trace a merged QED batch: gap, merged execution, and the
    /// application-side result split (client compute phase). Returns
    /// per-query result sets.
    pub fn trace_merged_selection(
        &self,
        queries: &[QedQuery],
        short_circuit: bool,
    ) -> (Vec<Vec<Tuple>>, WorkTrace) {
        self.try_trace_merged_selection(queries, short_circuit)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::trace_merged_selection`]: malformed batches come
    /// back as a typed [`ServerError`] instead of a panic.
    pub fn try_trace_merged_selection(
        &self,
        queries: &[QedQuery],
        short_circuit: bool,
    ) -> Result<(Vec<Vec<Tuple>>, WorkTrace), ServerError> {
        let (split, mut traces) = self.merged_selection_traces(queries, short_circuit, None)?;
        Ok((split, traces.pop().expect("serial path yields one trace")))
    }

    /// Trace TPC-H Q1.
    pub fn trace_q1(&self, delta_days: i32) -> (Vec<Tuple>, WorkTrace) {
        self.trace_statement(
            StatementKind::Q1,
            plans::q1_plan(&self.catalog, delta_days),
            "Q1",
        )
    }

    /// Trace TPC-H Q3.
    pub fn trace_q3(&self, segment: &str, cut: eco_tpch::Date) -> (Vec<Tuple>, WorkTrace) {
        self.trace_statement(
            StatementKind::Q3,
            plans::q3_plan(&self.catalog, segment, cut),
            "Q3",
        )
    }

    /// Trace TPC-H Q6.
    pub fn trace_q6(&self, year: i32, discount_pct: i64, max_qty: i64) -> (Vec<Tuple>, WorkTrace) {
        self.trace_statement(
            StatementKind::Q6,
            plans::q6_plan(&self.catalog, year, discount_pct, max_qty),
            "Q6",
        )
    }

    /// Trace an ad-hoc SQL statement (parsed, bound and planned by the
    /// generic front end in `eco-query::sql`): `SELECT`s execute and
    /// return rows; `CREATE INDEX` bulk-loads a paged B-tree (ledger
    /// schema v4) and returns no rows. Panics on a disk fault —
    /// fault-injected servers use [`Self::try_trace_sql`], which types
    /// it.
    pub fn trace_sql(
        &self,
        sql: &str,
    ) -> Result<(Vec<Tuple>, WorkTrace), eco_query::sql::SqlError> {
        match self.try_trace_sql(sql) {
            Ok(r) => Ok(r),
            Err(ServerError::Sql(e)) => Err(e),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible SQL tracing with every failure mode typed into
    /// [`ServerError`] — the session layer's single error type: lex /
    /// parse / bind errors as [`ServerError::Sql`], catalog rejections
    /// of `CREATE INDEX` as [`ServerError::Index`], unrecoverable disk
    /// faults as [`ServerError::Io`].
    ///
    /// Once an index exists, the planner picks it automatically for
    /// sufficiently selective sargable predicates (see
    /// `eco_query::sql::plan`); probes are charged as v4 index random
    /// I/O, so index-free sessions keep bit-identical ledgers.
    pub fn try_trace_sql(&self, sql: &str) -> Result<(Vec<Tuple>, WorkTrace), ServerError> {
        self.trace_sql_inner(sql, true).map(|(rows, trace, _)| (rows, trace))
    }

    /// [`Self::try_trace_sql`] with *deferred durability*: a DML
    /// statement is executed, logged and applied — visible to every
    /// subsequent statement — but **not** fsynced. The returned flag
    /// reports whether log bytes are now pending; the caller owns the
    /// commit and must eventually call [`Self::commit_wal`] (the group
    /// commit in `eco-server` batches many statements into one fsync
    /// through the same QED threshold/deadline policy reads use).
    /// Non-DML statements behave exactly like [`Self::try_trace_sql`].
    pub fn try_trace_sql_deferred(
        &self,
        sql: &str,
    ) -> Result<(Vec<Tuple>, WorkTrace, bool), ServerError> {
        self.trace_sql_inner(sql, false)
    }

    /// The one shared SQL statement path. `durable` selects auto-commit
    /// (fsync inside the statement, log I/O charged to its trace) vs
    /// deferred group commit.
    fn trace_sql_inner(
        &self,
        sql: &str,
        durable: bool,
    ) -> Result<(Vec<Tuple>, WorkTrace, bool), ServerError> {
        let stmt = eco_query::sql::parse_statement(sql)?;
        let tokens = (sql.split_whitespace().count() as u64).max(4);
        let mut ctx = self.exec_ctx();
        ctx.charge(OpClass::Parse, tokens);
        let mut deferred = false;
        let (rows, label) = match stmt {
            Statement::Select(select) => {
                let mut plan = eco_query::sql::plan_select(&self.catalog, &select)?;
                let rows = self.engine.execute(plan.as_mut(), &mut ctx);
                if let Some(e) = ctx.take_error() {
                    return Err(ServerError::Io(e));
                }
                (rows, "sql")
            }
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                let entry = self.catalog.create_index(&name, &table, &column)?;
                // The bulk load sorts and packs key/row-id pairs
                // entirely in memory (no paged I/O — pages materialize
                // lazily on first probe), so the build bills as CPU
                // comparison work, one NodeSearch per indexed row.
                ctx.charge(OpClass::NodeSearch, entry.index.len() as u64);
                (Vec::new(), "create index")
            }
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_) => {
                let label = match stmt {
                    Statement::Insert(_) => "insert",
                    Statement::Update(_) => "update",
                    _ => "delete",
                };
                let outcome = execute_dml(&self.catalog, &stmt, &mut ctx)?;
                let affected = self.log_and_apply(outcome, &mut ctx, durable)?;
                deferred = !durable;
                (vec![vec![Value::Int(affected as i64)]], label)
            }
        };
        let exec_phase = ctx.take_phase(PhaseKind::Execute, label);
        let mut trace = WorkTrace::new();
        trace.push(self.gap_before(&exec_phase));
        trace.push(exec_phase);
        Ok((rows, trace, deferred))
    }

    /// The write protocol (one statement = one transaction): charge
    /// [`OpClass::LogRecord`] per redo record plus the commit marker,
    /// append them to the write-ahead log, apply the records through
    /// the catalog (visibility at append), and — when `durable` —
    /// fsync, charging the v5 log I/O classes (`log_ios`/`log_bytes`).
    /// Group commit defers the fsync; until it happens the transaction
    /// is visible but would not survive a crash, which is exactly what
    /// the crash-replay equivalence property pins down.
    fn log_and_apply(
        &self,
        outcome: DmlOutcome,
        ctx: &mut ExecCtx,
        durable: bool,
    ) -> Result<u64, ServerError> {
        let mut wal = self.wal.lock();
        ctx.charge(OpClass::LogRecord, outcome.records.len() as u64 + 1);
        for rec in &outcome.records {
            wal.log.append(rec)?;
        }
        let txn = wal.next_txn;
        wal.log.append(&WalRecord::Commit { txn })?;
        wal.next_txn += 1;
        if durable {
            let bytes = wal.log.fsync()?;
            ctx.charge_disk(DiskWork {
                log_ios: 1,
                log_bytes: bytes,
                ..DiskWork::none()
            });
        }
        // Apply while still holding the log lock so concurrent writers
        // observe log order = apply order.
        for rec in &outcome.records {
            self.catalog.apply_wal_record(rec)?;
        }
        Ok(outcome.affected)
    }

    /// Flush the write-ahead log: one fsync covering every statement
    /// staged since the last commit, charged as v5 log I/O (one
    /// `log_ios`, block-rounded `log_bytes`) in its own execute phase.
    /// Returns the durable byte count and the trace (both zero/empty
    /// when nothing was pending — an empty fsync is free and uncounted).
    pub fn commit_wal(&self) -> Result<(u64, WorkTrace), ServerError> {
        let mut wal = self.wal.lock();
        if wal.log.pending_bytes() == 0 {
            return Ok((0, WorkTrace::new()));
        }
        let bytes = wal.log.fsync()?;
        let mut ctx = ExecCtx::new();
        ctx.charge_disk(DiskWork {
            log_ios: 1,
            log_bytes: bytes,
            ..DiskWork::none()
        });
        let phase = ctx.take_phase(PhaseKind::Execute, "group commit");
        let mut trace = WorkTrace::new();
        trace.push(phase);
        Ok((bytes, trace))
    }

    /// Log bytes appended but not yet fsynced (transactions that would
    /// not survive a crash right now).
    pub fn wal_pending_bytes(&self) -> usize {
        self.wal.lock().log.pending_bytes()
    }

    /// Fsyncs the write-ahead log has performed.
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.lock().log.fsyncs()
    }

    /// Whether the write-ahead log has hit its installed crash point
    /// (mutations fail with [`ServerError::Wal`] until
    /// [`Self::recover`] runs; reads keep serving).
    pub fn wal_crashed(&self) -> bool {
        self.wal.lock().log.crashed()
    }

    /// A snapshot of the simulated on-disk log image — durable bytes
    /// plus any torn trailing fragment the crash left behind. What a
    /// recovery pass (or an external checker) reads.
    pub fn wal_image(&self) -> Vec<u8> {
        self.wal.lock().log.image()
    }

    /// Crash recovery (redo-only): scan the on-disk log image, trim a
    /// torn tail, discard uncommitted records, rebuild the base tables
    /// from the generated source rows, replay the committed
    /// transactions in log order, and re-create every secondary index
    /// over the recovered tables (`CREATE INDEX` is not logged — the
    /// index is derivable state). Afterwards the log restarts empty
    /// (recovery is a checkpoint), the transaction counter resumes past
    /// the highest committed id, and the spent crash point is cleared;
    /// the read-fault schedule stays installed.
    pub fn recover(&mut self) -> Result<RecoveryReport, ServerError> {
        let image = self.wal.lock().log.image();
        let rec = WriteAheadLog::recover(&image)?;
        let catalog = load_tpch(&self.source, self.profile.engine_kind(), 1 << 22);
        catalog
            .pool()
            .set_warm_reread_every(self.profile.warm_reread_every());
        catalog.pool().set_fault_plan(self.catalog.pool().fault_plan());
        for r in &rec.records {
            catalog.apply_wal_record(r)?;
        }
        let old_indexes = self.catalog.index_entries();
        for e in &old_indexes {
            catalog.create_index(&e.name, &e.table, &e.column)?;
        }
        self.catalog = catalog;
        let mut wal = self.wal.lock();
        wal.log = WriteAheadLog::new();
        wal.next_txn = rec.txns.last().copied().unwrap_or(0) + 1;
        Ok(RecoveryReport {
            records_replayed: rec.records.len(),
            committed_txns: rec.txns,
            torn_tail: rec.torn_tail,
            uncommitted_records: rec.uncommitted_records,
            indexes_rebuilt: old_indexes.len(),
        })
    }

    /// Build a paged B-tree secondary index (ledger schema v4) over a
    /// disk-engine table column, bulk-loaded from the current table
    /// contents — the programmatic twin of SQL `CREATE INDEX`.
    ///
    /// Creation itself charges no statement ledger; only statements
    /// that *probe* the index pick up `index_ios`/`index_bytes` (priced
    /// as random I/O) and `NodeSearch` CPU work, so every index-free
    /// run stays bit-identical to pre-v4 figures. Memory-engine tables
    /// are rejected with [`ServerError::Index`]: the paper's CPU-stress
    /// profile has no paged storage to index.
    pub fn create_index(
        &self,
        name: &str,
        table: &str,
        column: &str,
    ) -> Result<std::sync::Arc<eco_storage::IndexEntry>, ServerError> {
        Ok(self.catalog.create_index(name, table, column)?)
    }

    /// Run an ad-hoc SQL `SELECT` under a machine configuration.
    pub fn run_sql(
        &self,
        sql: &str,
        config: MachineConfig,
    ) -> Result<QueryRun, eco_query::sql::SqlError> {
        let (rows, trace) = self.trace_sql(sql)?;
        let measurement = self.machine.measure(&trace, &config);
        Ok(QueryRun {
            rows,
            trace,
            measurement,
        })
    }

    // --- one-shot runs ----------------------------------------------------

    /// Run one Q5 under a machine configuration.
    pub fn run_q5(&self, region: &str, year: i32, config: MachineConfig) -> QueryRun {
        let params = Q5Params::new(region, year);
        let (rows, trace) = self.trace_q5(&params);
        let measurement = self.machine.measure(&trace, &config);
        QueryRun {
            rows,
            trace,
            measurement,
        }
    }

    /// Run the ten-query Q5 PVC workload under a configuration.
    pub fn run_q5_workload(&self, config: MachineConfig) -> QueryRun {
        let (rows, trace) = self.trace_q5_workload();
        let measurement = self.machine.measure(&trace, &config);
        QueryRun {
            rows: rows.into_iter().flatten().collect(),
            trace,
            measurement,
        }
    }

    /// Price an existing trace under another configuration.
    pub fn price(&self, trace: &WorkTrace, config: MachineConfig) -> Measurement {
        self.machine.measure(trace, &config)
    }
}

impl std::fmt::Debug for EcoDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcoDb")
            .field("profile", &self.profile.name())
            .field("scale", &self.scale)
            .field("tables", &self.catalog.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_simhw::cpu::{CpuConfig, VoltageSetting};

    fn db(profile: EngineProfile) -> EcoDb {
        EcoDb::tpch(profile, 0.005)
    }

    #[test]
    fn q5_runs_on_both_profiles_with_same_answer() {
        let mem = db(EngineProfile::MemoryEngine);
        let disk = db(EngineProfile::CommercialDisk);
        let a = mem.run_q5("ASIA", 1994, MachineConfig::stock());
        let b = disk.run_q5("ASIA", 1994, MachineConfig::stock());
        assert_eq!(a.rows, b.rows, "engines must agree on answers");
        assert!(!a.rows.is_empty());
    }

    #[test]
    fn pvc_saves_energy_costs_time() {
        let db = db(EngineProfile::MemoryEngine);
        let stock = db.run_q5("ASIA", 1994, MachineConfig::stock());
        let pvc = db.run_q5(
            "ASIA",
            1994,
            MachineConfig::with_cpu(CpuConfig::underclocked(0.05, VoltageSetting::Medium)),
        );
        assert_eq!(stock.rows, pvc.rows);
        assert!(pvc.measurement.cpu_joules < stock.measurement.cpu_joules);
        assert!(pvc.measurement.elapsed_s > stock.measurement.elapsed_s);
    }

    #[test]
    fn memory_profile_is_more_cpu_bound_than_disk_profile() {
        let mem = db(EngineProfile::MemoryEngine);
        let disk = db(EngineProfile::CommercialDisk);
        let m = mem.run_q5_workload(MachineConfig::stock());
        let d = disk.run_q5_workload(MachineConfig::stock());
        assert!(
            m.measurement.utilization > d.measurement.utilization + 0.2,
            "memory {} vs disk {}",
            m.measurement.utilization,
            d.measurement.utilization
        );
        assert!(m.measurement.utilization > 0.85);
    }

    #[test]
    fn cold_run_slower_and_disk_heavier_than_warm() {
        let db = db(EngineProfile::CommercialDisk);
        // Cold: fresh pool.
        db.flush_cache();
        let cold = db.run_q5_workload(MachineConfig::stock());
        // Warm: run again without flushing.
        let warm = db.run_q5_workload(MachineConfig::stock());
        assert!(cold.measurement.elapsed_s > 1.5 * warm.measurement.elapsed_s);
        assert!(cold.measurement.disk_joules > warm.measurement.disk_joules);
        assert_eq!(cold.rows, warm.rows);
    }

    #[test]
    fn merged_selection_matches_individual_queries() {
        let db = db(EngineProfile::MemoryEngine);
        let queries = eco_tpch::qed_workload(6);
        let (split, _trace) = db.trace_merged_selection(&queries, true);
        for (i, q) in queries.iter().enumerate() {
            let (rows, _) = db.trace_selection(q);
            assert_eq!(split[i], rows, "query {i}");
        }
    }

    #[test]
    fn traces_are_reusable_across_configs() {
        let db = db(EngineProfile::MemoryEngine);
        let (_, trace) = db.trace_q5(&Q5Params::new("ASIA", 1995));
        let m1 = db.price(&trace, MachineConfig::stock());
        let m2 = db.price(&trace, MachineConfig::stock());
        assert_eq!(m1.cpu_joules, m2.cpu_joules, "pricing is deterministic");
    }

    #[test]
    fn malformed_statements_return_typed_errors_not_panics() {
        let db = db(EngineProfile::MemoryEngine);
        // Empty merged batch.
        let err = db.try_trace_merged_selection(&[], true).unwrap_err();
        assert_eq!(
            err,
            ServerError::Merge(eco_query::mqo::MergeError::EmptyBatch)
        );
        assert!(err.to_string().contains("empty QED batch"));
        // Same on the cores path.
        let err = db
            .try_trace_merged_selection_cores(&[], true, 2)
            .unwrap_err();
        assert!(matches!(err, ServerError::Merge(_)));
        // Malformed SQL.
        let err = db.try_trace_sql("SELEC oops FROM nowhere").unwrap_err();
        assert!(matches!(err, ServerError::Sql(_)));
        // Unknown table binds to a typed SQL error too.
        let err = db.try_trace_sql("SELECT x FROM not_a_table").unwrap_err();
        assert!(matches!(err, ServerError::Sql(_)));
        // The database is still fully operational afterwards.
        let (rows, _) = db.trace_q6(1994, 6, 24);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn create_index_statement_builds_and_planner_uses_it() {
        let db = db(EngineProfile::CommercialDisk);
        let sql = "SELECT l_orderkey FROM lineitem WHERE l_quantity = 7";
        let (scan_rows, scan_trace) = db.try_trace_sql(sql).expect("scan plan");
        assert!(scan_trace
            .phases()
            .iter()
            .all(|p| p.disk.index_ios == 0 && p.cpu.count(OpClass::NodeSearch) == 0));

        let (ddl_rows, ddl_trace) = db
            .try_trace_sql("CREATE INDEX ix_qty ON lineitem (l_quantity)")
            .expect("create index");
        assert!(ddl_rows.is_empty(), "DDL returns no rows");
        assert!(
            ddl_trace
                .phases()
                .iter()
                .any(|p| p.cpu.count(OpClass::NodeSearch) > 0),
            "bulk load bills NodeSearch comparison work"
        );

        // Same statement now routes through the index: same answer,
        // probes billed as v4 index random I/O.
        let (ix_rows, ix_trace) = db.try_trace_sql(sql).expect("index plan");
        assert_eq!(scan_rows, ix_rows, "access path must not change answers");
        assert!(ix_trace.phases().iter().any(|p| p.disk.index_ios > 0));

        // Duplicate names and memory-engine tables are typed catalog
        // rejections, not panics.
        let err = db
            .try_trace_sql("CREATE INDEX ix_qty ON lineitem (l_quantity)")
            .unwrap_err();
        assert!(matches!(
            err,
            ServerError::Index(eco_storage::IndexError::DuplicateIndex(_))
        ));
        let mem = self::db(EngineProfile::MemoryEngine);
        let err = mem
            .try_trace_sql("CREATE INDEX ix_qty ON lineitem (l_quantity)")
            .unwrap_err();
        assert!(matches!(
            err,
            ServerError::Index(eco_storage::IndexError::NotDiskTable(_))
        ));
        // Both databases still serve statements afterwards.
        let (rows, _) = db.trace_q6(1994, 6, 24);
        assert_eq!(rows.len(), 1);
        mem.try_trace_sql(sql).expect("memory profile still serves");
    }

    #[test]
    fn fallible_and_panicking_merged_paths_agree() {
        let db = db(EngineProfile::MemoryEngine);
        let queries = eco_tpch::qed_workload(4);
        let (a_rows, a_trace) = db.trace_merged_selection(&queries, true);
        let (b_rows, b_trace) = db
            .try_trace_merged_selection(&queries, true)
            .expect("valid");
        assert_eq!(a_rows, b_rows);
        assert_eq!(a_trace, b_trace, "one shared path, identical traces");
    }

    #[test]
    fn faults_fail_single_statements_with_typed_io_errors() {
        let db = db(EngineProfile::CommercialDisk);
        // Saturated plan: every cold page read faults (70% transient,
        // 15% permanent, 15% stall) — statements either recover via
        // retries or fail with a typed Io error; nothing panics.
        db.set_fault_plan(FaultPlan::new(1234, 1_000_000));
        db.flush_cache();
        let queries = eco_tpch::qed_workload(4);
        let mut io_errors = 0;
        for q in &queries {
            match db.try_trace_selection(q) {
                Ok((rows, trace)) => {
                    assert!(!trace.phases().is_empty());
                    let _ = rows;
                }
                Err(ServerError::Io(_)) => io_errors += 1,
                Err(other) => panic!("unexpected error class: {other}"),
            }
        }
        // lineitem spans many pages: a saturated plan must hit at least
        // one permanent fault.
        assert!(io_errors > 0, "saturated plan should fail something");
        // Clearing the plan (and the pool) restores full service.
        db.set_fault_plan(FaultPlan::none());
        db.flush_cache();
        for q in &queries {
            db.try_trace_selection(q).expect("fault-free run succeeds");
        }
    }

    #[test]
    fn fault_free_plan_leaves_ledgers_bit_identical() {
        let db = db(EngineProfile::CommercialDisk);
        db.flush_cache();
        let (rows_a, trace_a) = db.trace_q6(1994, 6, 24);
        // Install a plan that never fires, reboot, rerun: the trace must
        // be byte-for-byte identical (v2 classes all zero).
        db.set_fault_plan(FaultPlan::none());
        db.flush_cache();
        let (rows_b, trace_b) = db.trace_q6(1994, 6, 24);
        assert_eq!(rows_a, rows_b);
        assert_eq!(trace_a, trace_b, "fault-free ledgers are bit-identical");
        for p in trace_b.phases() {
            assert_eq!(p.disk.retry_ios, 0);
            assert_eq!(p.disk.retry_bytes, 0);
            assert_eq!(p.backoff_ns, 0);
        }
    }

    #[test]
    fn dml_round_trip_on_both_profiles_with_v5_charges() {
        for profile in [EngineProfile::MemoryEngine, EngineProfile::CommercialDisk] {
            let db = db(profile);
            let (before, _) = db
                .try_trace_sql("SELECT r_regionkey FROM region")
                .expect("select");
            let (rows, ins_trace) = db
                .try_trace_sql("INSERT INTO region VALUES (99, 'ATLANTIS', 'sunk')")
                .expect("insert");
            assert_eq!(rows, vec![vec![Value::Int(1)]], "affected count");
            // The DML trace carries the v5 charge classes: LogRecord
            // CPU work (record + commit marker) and one block-rounded
            // log fsync.
            let logged: u64 = ins_trace
                .phases()
                .iter()
                .map(|p| p.cpu.count(OpClass::LogRecord))
                .sum();
            assert_eq!(logged, 2, "insert + commit marker");
            let log_ios: u64 = ins_trace.phases().iter().map(|p| p.disk.log_ios).sum();
            let log_bytes: u64 = ins_trace.phases().iter().map(|p| p.disk.log_bytes).sum();
            assert_eq!(log_ios, 1);
            assert_eq!(
                log_bytes % eco_storage::page::PAGE_SIZE as u64,
                0,
                "fsync rounds to whole device blocks"
            );
            assert!(log_bytes > 0);

            let (after, _) = db
                .try_trace_sql("SELECT r_regionkey FROM region")
                .expect("select");
            assert_eq!(after.len(), before.len() + 1, "insert is visible");

            let (rows, _) = db
                .try_trace_sql("UPDATE region SET r_name = 'LEMURIA' WHERE r_regionkey = 99")
                .expect("update");
            assert_eq!(rows, vec![vec![Value::Int(1)]]);
            let (named, _) = db
                .try_trace_sql("SELECT r_name FROM region WHERE r_regionkey = 99")
                .expect("select");
            assert_eq!(named, vec![vec![Value::Str("LEMURIA".into())]]);

            let (rows, _) = db
                .try_trace_sql("DELETE FROM region WHERE r_regionkey = 99")
                .expect("delete");
            assert_eq!(rows, vec![vec![Value::Int(1)]]);
            let (final_rows, _) = db
                .try_trace_sql("SELECT r_regionkey FROM region")
                .expect("select");
            assert_eq!(final_rows.len(), before.len(), "delete restored the count");
        }
    }

    #[test]
    fn read_only_runs_keep_v5_classes_exactly_zero() {
        let db = db(EngineProfile::CommercialDisk);
        db.flush_cache();
        let (_, trace) = db.trace_q5_workload();
        let (_, sql_trace) = db
            .try_trace_sql("SELECT l_orderkey FROM lineitem WHERE l_quantity = 7")
            .expect("select");
        for t in [&trace, &sql_trace] {
            for p in t.phases() {
                assert_eq!(p.cpu.count(OpClass::LogRecord), 0);
                assert_eq!(p.disk.log_ios, 0);
                assert_eq!(p.disk.log_bytes, 0);
            }
        }
        assert_eq!(db.wal_fsyncs(), 0);
        assert_eq!(db.wal_pending_bytes(), 0);
    }

    #[test]
    fn group_commit_batches_fsyncs_and_charges_once() {
        let db = db(EngineProfile::MemoryEngine);
        let mut staged_traces = Vec::new();
        for key in 200..205 {
            let (rows, trace, pending) = db
                .try_trace_sql_deferred(&format!(
                    "INSERT INTO region VALUES ({key}, 'R{key}', 'c')"
                ))
                .expect("staged insert");
            assert_eq!(rows, vec![vec![Value::Int(1)]]);
            assert!(pending, "DML defers its fsync");
            staged_traces.push(trace);
        }
        // Staged statements charge log *records* but no log I/O yet.
        for t in &staged_traces {
            assert!(t.phases().iter().all(|p| p.disk.log_ios == 0));
            assert!(t.phases().iter().any(|p| p.cpu.count(OpClass::LogRecord) > 0));
        }
        assert!(db.wal_pending_bytes() > 0);
        assert_eq!(db.wal_fsyncs(), 0);
        // All five transactions are already visible (group commit
        // defers durability, not visibility).
        let (rows, _) = db
            .try_trace_sql("SELECT r_regionkey FROM region WHERE r_regionkey >= 200")
            .expect("select");
        assert_eq!(rows.len(), 5);
        // One commit covers the whole batch with a single fsync.
        let (bytes, commit_trace) = db.commit_wal().expect("commit");
        assert!(bytes > 0);
        assert_eq!(db.wal_fsyncs(), 1);
        assert_eq!(db.wal_pending_bytes(), 0);
        let ios: u64 = commit_trace.phases().iter().map(|p| p.disk.log_ios).sum();
        assert_eq!(ios, 1);
        // An empty commit is free and uncounted.
        let (bytes, trace) = db.commit_wal().expect("no-op commit");
        assert_eq!(bytes, 0);
        assert!(trace.phases().is_empty());
        assert_eq!(db.wal_fsyncs(), 1);
    }

    #[test]
    fn wal_crash_fails_statements_and_recovery_restores_committed_prefix() {
        use eco_simhw::fault::{TornTail, WalCrash};
        let mut db = db(EngineProfile::CommercialDisk);
        // Arm a crash: the log dies on the 5th append with a torn tail.
        // Statements 1-2 (2 records each: row + commit) commit; the
        // third statement's row record is the 5th append and dies.
        db.set_fault_plan(FaultPlan::none().with_wal_crash(WalCrash::KillAfterRecords {
            records: 4,
            torn: TornTail::MidPayload,
        }));
        db.try_trace_sql("INSERT INTO region VALUES (50, 'A', 'x')")
            .expect("committed 1");
        db.try_trace_sql("INSERT INTO region VALUES (51, 'B', 'y')")
            .expect("committed 2");
        let err = db
            .try_trace_sql("INSERT INTO region VALUES (52, 'C', 'z')")
            .unwrap_err();
        assert!(matches!(err, ServerError::Wal(_)), "typed WAL error: {err}");
        assert!(db.wal_crashed());
        // Every further mutation fails typed; reads keep serving.
        let err = db
            .try_trace_sql("DELETE FROM region WHERE r_regionkey = 50")
            .unwrap_err();
        assert!(matches!(err, ServerError::Wal(WalError::Crashed)));
        db.try_trace_sql("SELECT r_regionkey FROM region")
            .expect("reads keep serving after a WAL crash");

        let report = db.recover().expect("recovery");
        assert_eq!(report.committed_txns, vec![1, 2]);
        assert_eq!(report.records_replayed, 2);
        assert!(report.torn_tail, "the torn 5th append must be detected");
        assert!(!db.wal_crashed());
        let (rows, _) = db
            .try_trace_sql("SELECT r_regionkey FROM region WHERE r_regionkey >= 50")
            .expect("post-recovery select");
        assert_eq!(
            rows,
            vec![vec![Value::Int(50)], vec![Value::Int(51)]],
            "exactly the committed prefix survives"
        );
        // The write path is live again and the txn counter resumed.
        db.try_trace_sql("INSERT INTO region VALUES (52, 'C', 'z')")
            .expect("write path restored");
        let (rows, _) = db
            .try_trace_sql("SELECT r_regionkey FROM region WHERE r_regionkey >= 50")
            .expect("select");
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn q1_q3_q6_run() {
        let db = db(EngineProfile::MemoryEngine);
        let (r1, _) = db.trace_q1(90);
        assert!(!r1.is_empty());
        let (r3, _) = db.trace_q3("BUILDING", eco_tpch::Date::from_ymd(1995, 3, 15));
        assert!(r3.len() <= 10);
        let (r6, _) = db.trace_q6(1994, 6, 24);
        assert_eq!(r6.len(), 1);
    }
}
