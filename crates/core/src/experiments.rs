//! The reproduction harness: one typed experiment per table/figure in
//! the paper's evaluation, each returning structured rows and printing
//! the same series the paper reports.
//!
//! | id | paper artifact |
//! |----|----------------|
//! | [`table1`] | Table 1 — system power breakdown |
//! | [`fig1`]   | Fig 1 — Q5 joules vs seconds, commercial DBMS |
//! | [`fig2`]   | Fig 2 — energy/time ratios + iso-EDP, commercial |
//! | [`fig3`]   | Fig 3 — energy/time ratios, MySQL memory engine |
//! | [`fig4`]   | Fig 4 — observed vs theoretical (`V²/F`) EDP |
//! | [`warm_cold`] | §3.5 — CPU vs disk joules, warm vs cold |
//! | [`fig5`]   | Fig 5 — disk throughput & energy/KB by pattern |
//! | [`fig6`]   | Fig 6 — QED energy vs average response time |
//! | [`operator_energy`] | extension — join-algorithm energy (§2) |
//! | [`index_crossover`] | extension — B-tree probe vs scan energy (Fig 5's random-vs-sequential axis applied to access paths) |
//!
//! Scale factors are configurable (the paper used SF 1.0 / 0.125 / 0.5
//! on real hardware; simulation shapes are scale-free, so tests and
//! benches default to smaller SFs for runtime sanity).

use eco_simhw::cpu::VoltageSetting;
use eco_simhw::disk::{AccessPattern, DiskSpec};
use eco_simhw::machine::MachineConfig;
use eco_simhw::power::{table1_breakdown, CpuPowerModel};
use eco_simhw::psu::PsuSpec;
use eco_simhw::CpuSpec;

use crate::pvc::{theoretical_edp_ratio, PvcSweep};
use crate::qed::{run_qed, QedOutcome};
use crate::server::{EcoDb, EngineProfile};

/// Default scale factor for quick experiment runs.
pub const DEFAULT_SCALE: f64 = 0.02;

/// Render an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&line(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// One row of the Table-1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Build stage label.
    pub label: String,
    /// Modeled wall watts.
    pub modeled_w: f64,
    /// The paper's measured watts.
    pub paper_w: f64,
}

/// Reproduce Table 1: wall power as the machine is built up.
pub fn table1() -> Vec<Table1Row> {
    let paper = [9.2, 20.1, 49.7, 54.0, 55.7, 69.3];
    let model = CpuPowerModel::new(CpuSpec::e8500());
    table1_breakdown(&model, &PsuSpec::default())
        .into_iter()
        .zip(paper)
        .map(|(row, paper_w)| Table1Row {
            label: row.label,
            modeled_w: row.wall_w,
            paper_w,
        })
        .collect()
}

/// Format the Table-1 reproduction.
pub fn table1_report() -> String {
    let rows: Vec<Vec<String>> = table1()
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.1}", r.modeled_w),
                format!("{:.1}", r.paper_w),
            ]
        })
        .collect();
    render_table(
        "Table 1: system power breakdown (watts at the wall)",
        &["build stage", "modeled W", "paper W"],
        &rows,
    )
}

// ---------------------------------------------------------------------------
// Figures 1-3: PVC
// ---------------------------------------------------------------------------

/// One PVC operating point for the figure reports.
#[derive(Debug, Clone)]
pub struct PvcFigPoint {
    /// Setting label.
    pub label: String,
    /// Underclock fraction.
    pub underclock: f64,
    /// Voltage setting name.
    pub voltage: String,
    /// Absolute seconds.
    pub seconds: f64,
    /// Absolute CPU joules.
    pub cpu_joules: f64,
    /// Ratios vs stock.
    pub energy_ratio: f64,
    /// Time ratio vs stock.
    pub time_ratio: f64,
    /// EDP ratio vs stock.
    pub edp_ratio: f64,
}

/// PVC figure data: stock + grid points for one engine profile.
#[derive(Debug, Clone)]
pub struct PvcFigure {
    /// Which engine profile was measured.
    pub profile: &'static str,
    /// Stock seconds.
    pub stock_seconds: f64,
    /// Stock CPU joules.
    pub stock_joules: f64,
    /// Grid points.
    pub points: Vec<PvcFigPoint>,
}

fn pvc_figure(profile: EngineProfile, scale: f64, voltages: &[VoltageSetting]) -> PvcFigure {
    let db = EcoDb::tpch(profile, scale);
    if profile == EngineProfile::CommercialDisk {
        db.warm_up(); // the paper's Figs 1-3 are warm runs
    }
    let (_, trace) = db.trace_q5_workload();
    let sweep = PvcSweep::run(db.machine(), &trace, &[0.05, 0.10, 0.15], voltages);
    PvcFigure {
        profile: profile.name(),
        stock_seconds: sweep.stock.seconds,
        stock_joules: sweep.stock.cpu_joules,
        points: sweep
            .points
            .iter()
            .map(|p| PvcFigPoint {
                label: p.point.label.clone(),
                underclock: p.underclock,
                voltage: p.voltage.name().to_string(),
                seconds: p.point.seconds,
                cpu_joules: p.point.cpu_joules,
                energy_ratio: p.energy_ratio,
                time_ratio: p.time_ratio,
                edp_ratio: p.edp_ratio,
            })
            .collect(),
    }
}

/// Fig 1: Q5 workload on the commercial profile — absolute CPU joules
/// vs seconds for stock and the medium-voltage settings A/B/C.
pub fn fig1(scale: f64) -> PvcFigure {
    pvc_figure(
        EngineProfile::CommercialDisk,
        scale,
        &[VoltageSetting::Medium],
    )
}

/// Fig 2: commercial profile, small + medium voltage, ratio axes.
pub fn fig2(scale: f64) -> PvcFigure {
    pvc_figure(
        EngineProfile::CommercialDisk,
        scale,
        &[VoltageSetting::Small, VoltageSetting::Medium],
    )
}

/// Fig 3: MySQL memory-engine profile, small + medium voltage.
pub fn fig3(scale: f64) -> PvcFigure {
    pvc_figure(
        EngineProfile::MemoryEngine,
        scale,
        &[VoltageSetting::Small, VoltageSetting::Medium],
    )
}

/// Format a PVC figure as a table.
pub fn pvc_report(title: &str, fig: &PvcFigure) -> String {
    let mut rows = vec![vec![
        "stock".to_string(),
        format!("{:.2}", fig.stock_seconds),
        format!("{:.1}", fig.stock_joules),
        "1.000".into(),
        "1.000".into(),
        "1.000".into(),
    ]];
    for p in &fig.points {
        rows.push(vec![
            p.label.clone(),
            format!("{:.2}", p.seconds),
            format!("{:.1}", p.cpu_joules),
            format!("{:.3}", p.energy_ratio),
            format!("{:.3}", p.time_ratio),
            format!("{:.3}", p.edp_ratio),
        ]);
    }
    render_table(
        title,
        &[
            "setting",
            "seconds",
            "CPU J",
            "E ratio",
            "T ratio",
            "EDP ratio",
        ],
        &rows,
    )
}

// ---------------------------------------------------------------------------
// Figure 4: observed vs theoretical EDP
// ---------------------------------------------------------------------------

/// One Fig-4 point: observed EDP ratio vs the `V²/F` model.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Voltage setting name.
    pub voltage: String,
    /// Underclock fraction.
    pub underclock: f64,
    /// Observed EDP ratio vs stock.
    pub observed_edp_ratio: f64,
    /// Theoretical `V²/F` ratio vs stock.
    pub theoretical_ratio: f64,
}

/// Fig 4: on the MySQL profile (as in the paper), compare observed EDP
/// with the theoretical model for small (a) and medium (b) settings.
pub fn fig4(scale: f64) -> Vec<Fig4Point> {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, scale);
    let (_, trace) = db.trace_q5_workload();
    let sweep = PvcSweep::paper_grid(db.machine(), &trace);
    let util = db.price(&trace, MachineConfig::stock()).utilization;
    let mut out = Vec::new();
    for v in [VoltageSetting::Small, VoltageSetting::Medium] {
        for p in sweep.points_for(v) {
            out.push(Fig4Point {
                voltage: v.name().to_string(),
                underclock: p.underclock,
                observed_edp_ratio: p.edp_ratio,
                theoretical_ratio: theoretical_edp_ratio(db.machine(), &p.point.config.cpu, util),
            });
        }
    }
    out
}

/// Format Fig 4.
pub fn fig4_report(points: &[Fig4Point]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.voltage.clone(),
                format!("{:.0}%", p.underclock * 100.0),
                format!("{:.3}", p.observed_edp_ratio),
                format!("{:.3}", p.theoretical_ratio),
            ]
        })
        .collect();
    render_table(
        "Fig 4: observed EDP vs theoretical V²/F (ratios vs stock)",
        &["voltage", "underclock", "observed EDP", "V²/F model"],
        &rows,
    )
}

// ---------------------------------------------------------------------------
// §3.5: warm vs cold
// ---------------------------------------------------------------------------

/// Warm/cold run measurements (paper §3.5's CPU-vs-disk split).
#[derive(Debug, Clone, Copy)]
pub struct WarmColdRun {
    /// Workload seconds.
    pub seconds: f64,
    /// CPU joules.
    pub cpu_joules: f64,
    /// Disk joules.
    pub disk_joules: f64,
}

/// Warm vs cold comparison.
#[derive(Debug, Clone, Copy)]
pub struct WarmCold {
    /// Warm-database run.
    pub warm: WarmColdRun,
    /// Cold (post-"reboot") run.
    pub cold: WarmColdRun,
}

/// §3.5: run the Q5 workload on the commercial profile cold (flushed
/// buffer pool) and warm.
pub fn warm_cold(scale: f64) -> WarmCold {
    let db = EcoDb::tpch(EngineProfile::CommercialDisk, scale);
    db.flush_cache();
    let cold_run = db.run_q5_workload(MachineConfig::stock());
    let warm_run = db.run_q5_workload(MachineConfig::stock());
    let to = |m: &eco_simhw::machine::Measurement| WarmColdRun {
        seconds: m.elapsed_s,
        cpu_joules: m.cpu_joules,
        disk_joules: m.disk_joules,
    };
    WarmCold {
        warm: to(&warm_run.measurement),
        cold: to(&cold_run.measurement),
    }
}

/// Format the warm/cold comparison.
pub fn warm_cold_report(wc: &WarmCold) -> String {
    let rows = vec![
        vec![
            "warm".to_string(),
            format!("{:.2}", wc.warm.seconds),
            format!("{:.1}", wc.warm.cpu_joules),
            format!("{:.1}", wc.warm.disk_joules),
            format!("{:.2}", wc.warm.disk_joules / wc.warm.cpu_joules),
        ],
        vec![
            "cold".to_string(),
            format!("{:.2}", wc.cold.seconds),
            format!("{:.1}", wc.cold.cpu_joules),
            format!("{:.1}", wc.cold.disk_joules),
            format!("{:.2}", wc.cold.disk_joules / wc.cold.cpu_joules),
        ],
    ];
    render_table(
        "§3.5: warm vs cold Q5 workload (commercial profile)",
        &["run", "seconds", "CPU J", "disk J", "disk/CPU"],
        &rows,
    )
}

// ---------------------------------------------------------------------------
// Figure 5: disk access patterns
// ---------------------------------------------------------------------------

/// One Fig-5 row.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Access pattern name.
    pub pattern: String,
    /// Read block size, bytes.
    pub block: u64,
    /// Throughput, MB/s.
    pub throughput_mb_s: f64,
    /// Energy per KB retrieved, millijoules.
    pub mj_per_kb: f64,
}

/// Fig 5: read 1.6 GB of a 4 GB file sequentially and randomly at
/// 4/8/16/32 KB blocks; report throughput and energy per KB.
pub fn fig5() -> Vec<Fig5Row> {
    let disk = DiskSpec::default();
    let total: u64 = (16u64 << 30) / 10; // 1.6 GB
    let mut out = Vec::new();
    for pattern in [AccessPattern::Sequential, AccessPattern::Random] {
        for block in [4u64 << 10, 8 << 10, 16 << 10, 32 << 10] {
            out.push(Fig5Row {
                pattern: pattern.name().to_string(),
                block,
                throughput_mb_s: disk.throughput(pattern, total, block) / 1e6,
                mj_per_kb: disk.energy_per_kb(pattern, total, block) * 1e3,
            });
        }
    }
    out
}

/// Format Fig 5.
pub fn fig5_report(rows: &[Fig5Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.pattern.clone(),
                format!("{}K", r.block >> 10),
                format!("{:.2}", r.throughput_mb_s),
                format!("{:.3}", r.mj_per_kb),
            ]
        })
        .collect();
    render_table(
        "Fig 5: disk throughput and energy per KB (1.6 GB of a 4 GB file)",
        &["pattern", "block", "MB/s", "mJ/KB"],
        &table,
    )
}

// ---------------------------------------------------------------------------
// Figure 6: QED
// ---------------------------------------------------------------------------

/// Fig 6: QED vs sequential for the paper's batch sizes 35/40/45/50 on
/// the MySQL memory-engine profile at stock settings.
pub fn fig6(scale: f64) -> Vec<QedOutcome> {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, scale);
    [35usize, 40, 45, 50]
        .iter()
        .map(|&k| run_qed(&db, k, MachineConfig::stock(), true))
        .collect()
}

/// Format Fig 6.
pub fn fig6_report(outcomes: &[QedOutcome]) -> String {
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.batch_size.to_string(),
                format!("{:.3}", o.energy_ratio),
                format!("{:.3}", o.response_ratio),
                format!("{:.3}", o.edp_ratio),
                o.results_match.to_string(),
            ]
        })
        .collect();
    render_table(
        "Fig 6: QED vs sequential (MySQL memory-engine profile, stock)",
        &[
            "batch",
            "E ratio",
            "avg-resp ratio",
            "EDP ratio",
            "results ok",
        ],
        &rows,
    )
}

// ---------------------------------------------------------------------------
// Parallel scaling (extension; ROADMAP's production-scale axis): the
// morsel-driven executor across 1..8 simulated cores.
// ---------------------------------------------------------------------------

/// One core count's measured outcome for the Q5 PVC workload.
#[derive(Debug, Clone)]
pub struct ParallelScalingRow {
    /// Worker/core count.
    pub workers: usize,
    /// Simulated makespan, seconds.
    pub elapsed_s: f64,
    /// Makespan speedup vs 1 worker.
    pub speedup: f64,
    /// Total CPU joules (all cores, incl. idle tails).
    pub cpu_joules: f64,
    /// Wall joules through the shared PSU.
    pub wall_joules: f64,
    /// Whether the merged parallel ledger is bit-identical to serial.
    pub ledger_identical: bool,
}

/// The parallel-scaling experiment: the ten-query Q5 workload on the
/// memory-engine profile at stock settings, across 1/2/4/8 cores. The
/// merged energy ledger is asserted bit-identical to serial execution
/// at every core count — the property that keeps every other figure in
/// this file reproducible on parallel hardware.
pub fn parallel_scaling(scale: f64) -> Vec<ParallelScalingRow> {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, scale);
    let (_, serial_trace) = db.trace_q5_workload();
    let totals = |traces: &[eco_simhw::trace::WorkTrace]| {
        let mut cpu = eco_simhw::trace::CpuWork::new();
        let mut disk = eco_simhw::trace::DiskWork::none();
        let mut stream = 0u64;
        let mut random = 0u64;
        for t in traces {
            cpu.merge(&t.total_cpu());
            disk.merge(&t.total_disk());
            stream += t.total_mem_stream_bytes();
            random += t
                .phases()
                .iter()
                .map(|p| p.mem_random_accesses)
                .sum::<u64>();
        }
        (cpu, disk, stream, random)
    };
    let serial_totals = totals(std::slice::from_ref(&serial_trace));

    let mut base = 0.0;
    [1usize, 2, 4, 8]
        .iter()
        .map(|&workers| {
            let run = db.run_q5_workload_cores(workers, MachineConfig::stock());
            if workers == 1 {
                base = run.measurement.elapsed_s;
            }
            ParallelScalingRow {
                workers,
                elapsed_s: run.measurement.elapsed_s,
                speedup: base / run.measurement.elapsed_s,
                cpu_joules: run.measurement.cpu_joules,
                wall_joules: run.measurement.wall_joules,
                ledger_identical: totals(&run.core_traces) == serial_totals,
            }
        })
        .collect()
}

/// Format the parallel-scaling study.
pub fn parallel_scaling_report(rows: &[ParallelScalingRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                format!("{:.4}", r.elapsed_s),
                format!("{:.2}x", r.speedup),
                format!("{:.2}", r.cpu_joules),
                format!("{:.2}", r.wall_joules),
                r.ledger_identical.to_string(),
            ]
        })
        .collect();
    render_table(
        "Parallel scaling: Q5 workload, morsel-driven, per-core DVFS ledgers",
        &[
            "cores",
            "makespan s",
            "speedup",
            "CPU J",
            "wall J",
            "ledger==serial",
        ],
        &table,
    )
}

// ---------------------------------------------------------------------------
// Operator-level energy (extension; paper §2: "rethinking join
// algorithms in this context")
// ---------------------------------------------------------------------------

/// One join algorithm's measured cost on the same input.
#[derive(Debug, Clone)]
pub struct JoinAlgoRow {
    /// Algorithm name.
    pub algo: String,
    /// Execution seconds.
    pub seconds: f64,
    /// CPU joules.
    pub cpu_joules: f64,
    /// Average package watts while executing.
    pub avg_watts: f64,
    /// Output rows.
    pub rows: usize,
}

/// Hash vs sort-merge join on `lineitem ⋈ orders`: same answer,
/// different cycle mix, different watts — the operator-level trade an
/// energy-aware optimizer must weigh.
pub fn operator_energy(scale: f64) -> Vec<JoinAlgoRow> {
    use eco_query::context::ExecCtx;
    use eco_query::exec::execute;
    use eco_query::expr::{AggFunc, Expr};
    use eco_query::ops::{AggSpec, BoxedOp, HashAggregate, HashJoin, SeqScan, SortMergeJoin};
    use eco_simhw::trace::{PhaseKind, WorkTrace};

    let db = EcoDb::tpch(EngineProfile::MemoryEngine, scale);
    let cat = db.catalog();
    let orders = cat.expect("orders");
    let lineitem = cat.expect("lineitem");
    let o_orderkey = orders.schema().expect_index("o_orderkey");
    let l_orderkey = lineitem.schema().expect_index("l_orderkey");

    let mk_scan = |t: &std::sync::Arc<eco_storage::StoredTable>| -> BoxedOp {
        Box::new(SeqScan::new(std::sync::Arc::clone(t)))
    };

    let candidates: Vec<(&str, BoxedOp)> = vec![
        (
            "hash join",
            Box::new(HashJoin::new(
                mk_scan(&orders),
                mk_scan(&lineitem),
                vec![o_orderkey],
                vec![l_orderkey],
            )),
        ),
        (
            "sort-merge join",
            Box::new(SortMergeJoin::new(
                mk_scan(&orders),
                mk_scan(&lineitem),
                vec![o_orderkey],
                vec![l_orderkey],
            )),
        ),
    ];

    candidates
        .into_iter()
        .map(|(name, plan)| {
            // COUNT on top keeps the (identical) result path out of the
            // comparison — the join itself is what's being priced.
            let mut counted = Box::new(HashAggregate::new(
                plan,
                vec![],
                vec![AggSpec {
                    func: AggFunc::Count,
                    input: Expr::int(1),
                    name: "n".to_string(),
                }],
            )) as BoxedOp;
            let mut ctx = ExecCtx::new();
            let rows = execute(counted.as_mut(), &mut ctx);
            let joined = rows[0][0].as_int().expect("count") as usize;
            let mut trace = WorkTrace::new();
            trace.push(ctx.take_phase(PhaseKind::Execute, name));
            let m = db.machine().measure(&trace, &MachineConfig::stock());
            JoinAlgoRow {
                algo: name.to_string(),
                seconds: m.elapsed_s,
                cpu_joules: m.cpu_joules,
                avg_watts: m.avg_cpu_w,
                rows: joined,
            }
        })
        .collect()
}

/// Format the operator-level study.
pub fn operator_energy_report(rows: &[JoinAlgoRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algo.clone(),
                format!("{:.4}", r.seconds),
                format!("{:.3}", r.cpu_joules),
                format!("{:.1}", r.avg_watts),
                r.rows.to_string(),
            ]
        })
        .collect();
    render_table(
        "Operator-level energy: lineitem ⋈ orders by join algorithm",
        &["algorithm", "seconds", "CPU J", "avg W", "rows"],
        &table,
    )
}

// ---------------------------------------------------------------------------
// Index crossover (extension; ledger schema v4): where does a B-tree
// probe beat a sequential scan in *joules*? Fig 5 prices random I/O far
// above sequential per KB; this experiment applies that axis to access
// paths.
// ---------------------------------------------------------------------------

/// One selectivity point of the scan-vs-index energy study.
#[derive(Debug, Clone)]
pub struct IndexCrossoverRow {
    /// Fraction of the `l_orderkey` keyspace covered by the `BETWEEN`
    /// (lineitem is clustered by orderkey, so this is also roughly the
    /// fraction of pages the index path must touch).
    pub key_fraction: f64,
    /// Fraction of lineitem selected.
    pub selectivity: f64,
    /// Rows returned (identical on both paths).
    pub rows: usize,
    /// Cold sequential-scan seconds.
    pub scan_seconds: f64,
    /// Cold sequential-scan joules (CPU + disk).
    pub scan_joules: f64,
    /// Cold index-probe seconds.
    pub index_seconds: f64,
    /// Cold index-probe joules (CPU + disk).
    pub index_joules: f64,
    /// index/scan energy ratio (< 1 means the index wins).
    pub energy_ratio: f64,
    /// Whether both access paths returned identical rows.
    pub results_match: bool,
}

/// The crossover experiment: `l_orderkey BETWEEN lo AND lo+w` on the
/// commercial-disk profile, cold (flushed pool) so the disk pattern
/// dominates, comparing the sequential-scan plan against the B-tree
/// index plan as the key range widens. Lineitem is clustered by
/// orderkey, so the covered key fraction is roughly the fraction of
/// pages the index path touches. Narrow ranges favor the index (a few
/// random-priced page fetches beat streaming everything); wide ranges
/// favor the scan (random pricing makes touching every page through
/// the index strictly worse than streaming it).
pub fn index_crossover(scale: f64) -> Vec<IndexCrossoverRow> {
    use eco_query::context::ExecCtx;
    use eco_query::exec::execute;
    use eco_query::ops::BoxedOp;
    use eco_query::plans;
    use eco_simhw::trace::{PhaseKind, WorkTrace};
    use eco_storage::Tuple;

    let db = EcoDb::tpch(EngineProfile::CommercialDisk, scale);
    db.create_index("ix_lineitem_orderkey", "lineitem", "l_orderkey")
        .expect("disk profile indexes l_orderkey");
    let lineitem_rows = db.source().lineitem.len() as f64;
    let min_key = db
        .source()
        .lineitem
        .iter()
        .map(|l| l.l_orderkey)
        .min()
        .unwrap_or(1);
    let max_key = db
        .source()
        .lineitem
        .iter()
        .map(|l| l.l_orderkey)
        .max()
        .unwrap_or(1);
    let span = (max_key - min_key).max(1) as f64;

    // Cold-run a plan: flush the pool, execute, price at stock.
    let measure = |mut plan: BoxedOp, label: &str| -> (Vec<Tuple>, f64, f64) {
        db.flush_cache();
        let mut ctx = ExecCtx::new();
        let rows = execute(plan.as_mut(), &mut ctx);
        let mut trace = WorkTrace::new();
        trace.push(ctx.take_phase(PhaseKind::Execute, label));
        let m = db.machine().measure(&trace, &MachineConfig::stock());
        (rows, m.elapsed_s, m.cpu_joules + m.disk_joules)
    };

    [0.001f64, 0.01, 0.05, 0.2, 0.5, 1.0]
        .iter()
        .map(|&key_fraction| {
            let hi = min_key + (span * key_fraction).ceil() as i64;
            let scan = plans::orderkey_range_plan(db.catalog(), min_key, hi);
            let (scan_rows, scan_seconds, scan_joules) = measure(scan, "range scan");
            let ix = plans::orderkey_range_plan_indexed(db.catalog(), min_key, hi)
                .expect("index registered above");
            let (ix_rows, index_seconds, index_joules) = measure(ix, "range probe");
            IndexCrossoverRow {
                key_fraction,
                selectivity: scan_rows.len() as f64 / lineitem_rows,
                rows: scan_rows.len(),
                scan_seconds,
                scan_joules,
                index_seconds,
                index_joules,
                energy_ratio: index_joules / scan_joules,
                results_match: scan_rows == ix_rows,
            }
        })
        .collect()
}

/// Format the index-crossover study.
pub fn index_crossover_report(rows: &[IndexCrossoverRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}%", r.key_fraction * 100.0),
                format!("{:.1}%", r.selectivity * 100.0),
                r.rows.to_string(),
                format!("{:.4}", r.scan_seconds),
                format!("{:.2}", r.scan_joules),
                format!("{:.4}", r.index_seconds),
                format!("{:.2}", r.index_joules),
                format!("{:.3}", r.energy_ratio),
                r.results_match.to_string(),
            ]
        })
        .collect();
    render_table(
        "Index crossover: l_orderkey range, cold, scan vs B-tree probe",
        &[
            "keyspace",
            "sel",
            "rows",
            "scan s",
            "scan J",
            "index s",
            "index J",
            "E ratio",
            "results ok",
        ],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 0.004;

    #[test]
    fn table1_within_model_bands() {
        for r in table1() {
            let rel = (r.modeled_w - r.paper_w).abs() / r.paper_w;
            assert!(
                rel < 0.15,
                "{}: {:.1} vs {:.1}",
                r.label,
                r.modeled_w,
                r.paper_w
            );
        }
        assert!(!table1_report().is_empty());
    }

    #[test]
    fn fig1_setting_a_shape() {
        // Fig 1's headline: 5 % + medium saves big energy for a small
        // time penalty; deeper settings are strictly worse on both axes.
        let f = fig1(SCALE);
        assert_eq!(f.points.len(), 3);
        let a = &f.points[0];
        assert!(a.energy_ratio < 0.65, "A saves a lot: {}", a.energy_ratio);
        assert!(a.time_ratio < 1.10, "A costs little: {}", a.time_ratio);
        for w in f.points.windows(2) {
            assert!(
                w[1].cpu_joules > w[0].cpu_joules,
                "B, C consume more energy"
            );
            assert!(w[1].seconds > w[0].seconds, "B, C are slower");
        }
    }

    #[test]
    fn fig3_mysql_saves_less_than_commercial() {
        let commercial = fig2(SCALE);
        let mysql = fig3(SCALE);
        // Compare the 5 % medium point across profiles.
        let c = commercial
            .points
            .iter()
            .find(|p| p.voltage == "medium" && p.underclock == 0.05)
            .unwrap();
        let m = mysql
            .points
            .iter()
            .find(|p| p.voltage == "medium" && p.underclock == 0.05)
            .unwrap();
        assert!(
            m.energy_ratio > c.energy_ratio + 0.1,
            "MySQL {} vs commercial {}",
            m.energy_ratio,
            c.energy_ratio
        );
        // MySQL's time penalty is larger (CPU-bound workload).
        assert!(m.time_ratio > c.time_ratio);
    }

    #[test]
    fn fig4_observed_and_theory_agree_in_shape() {
        let pts = fig4(SCALE);
        assert_eq!(pts.len(), 6);
        for chunk in pts.chunks(3) {
            for w in chunk.windows(2) {
                assert!(w[1].observed_edp_ratio > w[0].observed_edp_ratio);
                assert!(w[1].theoretical_ratio > w[0].theoretical_ratio);
            }
        }
    }

    #[test]
    fn warm_cold_matches_paper_shape() {
        // Paper §3.5: cold ≈ 3× slower; warm disk/CPU ≈ 1/6; cold
        // disk/CPU > 1/2.
        let wc = warm_cold(SCALE);
        let slowdown = wc.cold.seconds / wc.warm.seconds;
        assert!(slowdown > 1.8, "cold must be much slower: {slowdown}");
        let warm_ratio = wc.warm.disk_joules / wc.warm.cpu_joules;
        let cold_ratio = wc.cold.disk_joules / wc.cold.cpu_joules;
        assert!(
            cold_ratio > 2.0 * warm_ratio,
            "{warm_ratio} vs {cold_ratio}"
        );
    }

    #[test]
    fn fig5_ratios() {
        let rows = fig5();
        assert_eq!(rows.len(), 8);
        let seq: Vec<&Fig5Row> = rows.iter().filter(|r| r.pattern == "sequential").collect();
        let rnd: Vec<&Fig5Row> = rows.iter().filter(|r| r.pattern == "random").collect();
        // Sequential flat; random rises just under proportionally.
        assert!((seq[0].throughput_mb_s - seq[3].throughput_mb_s).abs() < 0.01);
        let r8 = rnd[1].throughput_mb_s / rnd[0].throughput_mb_s;
        assert!((1.7..2.0).contains(&r8), "8K/4K = {r8}");
        for (s, r) in seq.iter().zip(&rnd) {
            assert!(r.mj_per_kb > s.mj_per_kb);
        }
    }

    #[test]
    fn join_algorithms_agree_but_differ_in_power() {
        let rows = operator_energy(SCALE);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].rows, rows[1].rows, "same join cardinality");
        // Different algorithms, different work: the energy bills differ
        // substantially for the same answer.
        let e_rel = (rows[0].cpu_joules - rows[1].cpu_joules).abs()
            / rows[0].cpu_joules.min(rows[1].cpu_joules);
        assert!(
            e_rel > 0.15,
            "hash {} J vs merge {} J",
            rows[0].cpu_joules,
            rows[1].cpu_joules
        );
        assert!(!operator_energy_report(&rows).is_empty());
    }

    #[test]
    fn parallel_scaling_is_near_linear_with_identical_ledgers() {
        let rows = parallel_scaling(SCALE);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.ledger_identical,
                "cores={}: merged ledger must equal serial",
                r.workers
            );
        }
        // Simulated makespan scales near-linearly on the CPU-bound
        // profile (the client gap on core 0 bounds perfect scaling).
        let s4 = rows.iter().find(|r| r.workers == 4).unwrap().speedup;
        assert!(s4 > 2.0, "4-core simulated speedup {s4}");
        // More cores never cost makespan.
        for w in rows.windows(2) {
            assert!(w[1].elapsed_s <= w[0].elapsed_s * 1.0001);
        }
        assert!(!parallel_scaling_report(&rows).is_empty());
    }

    #[test]
    fn index_crossover_favors_probes_only_when_selective() {
        let rows = index_crossover(SCALE);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.results_match,
                "fraction {}: rows must match",
                r.key_fraction
            );
        }
        let narrow = &rows[0];
        let full = rows.last().unwrap();
        assert!(
            narrow.energy_ratio < 0.5,
            "narrow range should favor the index: {}",
            narrow.energy_ratio
        );
        assert!(
            full.energy_ratio > 1.0,
            "full range should favor the scan: {}",
            full.energy_ratio
        );
        // The ratio rises with selectivity: each extra matched page is
        // random-priced on the index path, sequential on the scan path.
        for w in rows.windows(2) {
            assert!(
                w[1].energy_ratio > w[0].energy_ratio * 0.99,
                "ratio should rise with width: {} then {}",
                w[0].energy_ratio,
                w[1].energy_ratio
            );
        }
        assert!(!index_crossover_report(&rows).is_empty());
    }

    #[test]
    fn fig6_trades_energy_for_response() {
        let outcomes = fig6(SCALE);
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert!(o.results_match);
            assert!(
                o.energy_ratio < 0.75,
                "batch {}: {}",
                o.batch_size,
                o.energy_ratio
            );
            assert!(
                o.response_ratio > 1.0,
                "batch {}: {}",
                o.batch_size,
                o.response_ratio
            );
        }
        // Best EDP at the largest batch.
        assert!(outcomes[3].edp_ratio < outcomes[0].edp_ratio);
    }
}
