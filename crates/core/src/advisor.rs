//! The energy advisor: pick operating points under SLA constraints and
//! watch for mis-predictions.
//!
//! Paper §1: "Factors such as Service Level Agreements (SLAs) may
//! restrict the choices … when the data center is not operating at peak
//! capacity it may have the option of using an operating point that can
//! save energy", and "it may also be interesting to consider cases
//! where our initial prediction for energy consumption are incorrect
//! and then to dynamically adapt".

use eco_query::estimate::{
    estimate_index_selection, estimate_scan_selection, estimate_selection_batch,
};
use eco_simhw::cpu::{CpuConfig, VoltageSetting};
use eco_simhw::machine::{Machine, MachineConfig};
use eco_simhw::multicore::MultiCoreMachine;
use eco_simhw::trace::WorkTrace;

use crate::pvc::PvcSweep;

/// A response-time service-level agreement, expressed as the maximum
/// tolerable slowdown relative to the stock setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sla {
    /// Maximum response-time ratio (1.0 = no slowdown allowed).
    pub max_time_ratio: f64,
}

impl Sla {
    /// SLA allowing `pct` percent slowdown.
    pub fn slack_pct(pct: f64) -> Self {
        assert!(pct >= 0.0);
        Self {
            max_time_ratio: 1.0 + pct / 100.0,
        }
    }
}

/// Choose the PVC setting from a sweep: the most energy-saving point
/// within the SLA, or stock when nothing qualifies (a data center "near
/// peak may have no choice but to aim for the fastest query response
/// time").
pub fn choose_pvc(sweep: &PvcSweep, sla: Sla) -> MachineConfig {
    sweep
        .best_energy_under_sla(sla.max_time_ratio)
        .map(|p| p.point.config)
        .unwrap_or(sweep.stock.config)
}

/// A per-core p-state cap recommendation on the cores axis.
#[derive(Debug, Clone, Copy)]
pub struct CoreCapAdvice {
    /// Recommended multiplier cap for every core (9.5 = stock top).
    pub cap: f64,
    /// Predicted makespan under the cap, seconds.
    pub seconds: f64,
    /// CPU-energy ratio vs uncapped parallel execution (< 1 saves).
    pub energy_ratio: f64,
    /// Makespan ratio vs uncapped parallel execution (> 1 is slower).
    pub time_ratio: f64,
}

/// Recommend a per-core p-state cap for a morsel-parallel workload
/// under an *absolute* latency budget.
///
/// This is where parallelism and DVFS compose: spreading a query over
/// more cores cuts its makespan, which opens latency headroom that a
/// per-core cap converts into energy savings ("race to idle" inverted —
/// run wider and slower). The advisor walks the multiplier grid from
/// stock downward and returns the most energy-saving cap whose
/// predicted makespan still fits `max_seconds`; `None` when even stock
/// misses the budget (the operator must add cores instead).
pub fn recommend_core_cap(
    mc: &MultiCoreMachine,
    core_traces: &[WorkTrace],
    max_seconds: f64,
) -> Option<CoreCapAdvice> {
    assert!(max_seconds > 0.0, "latency budget must be positive");
    let stock = mc.measure_uniform(core_traces, &MachineConfig::stock());
    if stock.elapsed_s > max_seconds {
        return None;
    }
    let caps = [9.5, 9.0, 8.5, 8.0, 7.5, 7.0, 6.5, 6.0];
    let mut best: Option<CoreCapAdvice> = None;
    for cap in caps {
        let cfg = MachineConfig::with_cpu(CpuConfig::capped(cap, VoltageSetting::Stock));
        let m = mc.measure_uniform(core_traces, &cfg);
        if m.elapsed_s > max_seconds {
            continue;
        }
        let advice = CoreCapAdvice {
            cap,
            seconds: m.elapsed_s,
            energy_ratio: m.cpu_joules / stock.cpu_joules,
            time_ratio: m.elapsed_s / stock.elapsed_s,
        };
        if best
            .map(|b| advice.energy_ratio < b.energy_ratio)
            .unwrap_or(true)
        {
            best = Some(advice);
        }
    }
    best
}

/// Estimated QED trade-off for a batch size, from the cost model alone
/// (no execution).
#[derive(Debug, Clone, Copy)]
pub struct QedEstimate {
    /// Batch size.
    pub batch_size: usize,
    /// Estimated QED/sequential energy ratio.
    pub energy_ratio: f64,
    /// Estimated QED/sequential average-response ratio.
    pub response_ratio: f64,
}

/// Estimate QED ratios for batch size `k` using the optimizer cost
/// model (mirrors `qed::run_qed` semantics: sequential average
/// completion `(k+1)/2 · t₁` vs merged execution time).
pub fn estimate_qed(
    catalog: &eco_storage::Catalog,
    machine: &Machine,
    k: usize,
    short_circuit: bool,
) -> QedEstimate {
    let cfg = MachineConfig::stock();
    let single = estimate_selection_batch(catalog, 1, short_circuit).measure(machine, &cfg);
    let merged = estimate_selection_batch(catalog, k, short_circuit).measure(machine, &cfg);
    let t1 = single.elapsed_s;
    let tk = merged.elapsed_s;
    let kf = k as f64;
    QedEstimate {
        batch_size: k,
        energy_ratio: merged.cpu_joules / (kf * single.cpu_joules),
        response_ratio: tk / ((kf + 1.0) / 2.0 * t1),
    }
}

/// Choose the largest batch size in `1..=max_batch` whose estimated
/// response degradation stays within the SLA; larger batches always
/// save more energy, so largest-feasible is energy-optimal.
pub fn choose_qed_batch(
    catalog: &eco_storage::Catalog,
    machine: &Machine,
    max_batch: usize,
    sla: Sla,
    short_circuit: bool,
) -> Option<QedEstimate> {
    (2..=max_batch.min(50))
        .rev()
        .map(|k| estimate_qed(catalog, machine, k, short_circuit))
        .find(|e| e.response_ratio <= sla.max_time_ratio)
}

/// The access path the advisor predicts is cheaper in joules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Stream every page sequentially and filter.
    SeqScan,
    /// Probe the B-tree and fetch only matching pages (random-priced
    /// v4 index I/O).
    IndexProbe,
}

/// The predicted scan-vs-probe trade at one selectivity.
#[derive(Debug, Clone, Copy)]
pub struct AccessPathAdvice {
    /// The cheaper path by total (CPU + disk) joules.
    pub path: AccessPath,
    /// Estimated cold scan seconds.
    pub scan_seconds: f64,
    /// Estimated cold scan joules (CPU + disk).
    pub scan_joules: f64,
    /// Estimated cold probe seconds.
    pub index_seconds: f64,
    /// Estimated cold probe joules (CPU + disk).
    pub index_joules: f64,
}

/// Predict — without executing — whether a cold selection keeping
/// `selectivity` of the indexed table costs fewer joules by sequential
/// scan or by B-tree probe. This is the optimizer-side mirror of
/// `experiments::index_crossover`: Fig 5 prices random I/O far above
/// sequential per KB, so the probe wins only while the matched-page
/// count stays well below the table's page count.
pub fn choose_access_path(
    catalog: &eco_storage::Catalog,
    index: &eco_storage::IndexEntry,
    selectivity: f64,
    machine: &Machine,
) -> AccessPathAdvice {
    let cfg = MachineConfig::stock();
    let scan = estimate_scan_selection(catalog, &index.table, selectivity).measure(machine, &cfg);
    let probe = estimate_index_selection(catalog, index, selectivity).measure(machine, &cfg);
    let scan_joules = scan.cpu_joules + scan.disk_joules;
    let index_joules = probe.cpu_joules + probe.disk_joules;
    AccessPathAdvice {
        path: if index_joules < scan_joules {
            AccessPath::IndexProbe
        } else {
            AccessPath::SeqScan
        },
        scan_seconds: scan.elapsed_s,
        scan_joules,
        index_seconds: probe.elapsed_s,
        index_joules,
    }
}

/// One candidate plan's measured cost (energy-aware plan comparison —
/// paper §2: "considering the effect of different query plans for the
/// energy versus response time tradeoff").
#[derive(Debug, Clone)]
pub struct PlanEnergy {
    /// Candidate label.
    pub name: String,
    /// Response time, seconds.
    pub seconds: f64,
    /// CPU energy, joules.
    pub cpu_joules: f64,
    /// Result rows (callers verify all candidates agree).
    pub rows: Vec<eco_storage::Tuple>,
}

impl PlanEnergy {
    /// Energy-delay product.
    pub fn edp(&self) -> f64 {
        self.cpu_joules * self.seconds
    }
}

/// Execute and price each candidate plan for the same query, returning
/// them sorted by CPU energy (cheapest first). All candidates must be
/// semantically equivalent; the caller can assert equal `rows`.
pub fn rank_plans_by_energy(
    db: &crate::server::EcoDb,
    candidates: Vec<(&str, eco_query::ops::BoxedOp)>,
    config: MachineConfig,
) -> Vec<PlanEnergy> {
    let mut out: Vec<PlanEnergy> = candidates
        .into_iter()
        .map(|(name, mut plan)| {
            let mut ctx = eco_query::context::ExecCtx::new();
            let rows = eco_query::exec::execute(plan.as_mut(), &mut ctx);
            let phase = ctx.take_phase(eco_simhw::trace::PhaseKind::Execute, name);
            let mut trace = eco_simhw::trace::WorkTrace::new();
            trace.push(phase);
            let m = db.machine().measure(&trace, &config);
            PlanEnergy {
                name: name.to_string(),
                seconds: m.elapsed_s,
                cpu_joules: m.cpu_joules,
                rows,
            }
        })
        .collect();
    out.sort_by(|a, b| a.cpu_joules.partial_cmp(&b.cpu_joules).expect("no NaN"));
    out
}

/// Drift verdict from comparing a prediction to a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adaptation {
    /// Prediction held; keep the current plan/setting.
    Keep,
    /// Prediction was off beyond tolerance; re-plan ("dynamically adapt
    /// our query plan midflight", §1).
    Replan,
}

/// Monitors prediction accuracy over a run.
#[derive(Debug, Clone)]
pub struct PredictionMonitor {
    tolerance: f64,
    observations: Vec<f64>,
}

impl PredictionMonitor {
    /// Monitor that requests a re-plan when |actual/predicted − 1|
    /// exceeds `tolerance`.
    pub fn new(tolerance: f64) -> Self {
        assert!(tolerance > 0.0);
        Self {
            tolerance,
            observations: Vec::new(),
        }
    }

    /// Record one prediction/actual pair and decide.
    pub fn observe(&mut self, predicted: f64, actual: f64) -> Adaptation {
        assert!(predicted > 0.0, "prediction must be positive");
        let ratio = actual / predicted;
        self.observations.push(ratio);
        if (ratio - 1.0).abs() > self.tolerance {
            Adaptation::Replan
        } else {
            Adaptation::Keep
        }
    }

    /// Mean actual/predicted ratio so far (1.0 = perfectly calibrated).
    pub fn calibration(&self) -> f64 {
        if self.observations.is_empty() {
            1.0
        } else {
            self.observations.iter().sum::<f64>() / self.observations.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qed::run_qed;
    use crate::server::{EcoDb, EngineProfile};
    use eco_simhw::cpu::VoltageSetting;

    #[test]
    fn pvc_choice_respects_sla() {
        let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.004);
        let (_, trace) = db.trace_q5_workload();
        let sweep = PvcSweep::paper_grid(db.machine(), &trace);
        // Tight SLA: stock.
        let tight = choose_pvc(&sweep, Sla::slack_pct(0.0));
        assert_eq!(tight.cpu.underclock, 0.0);
        // Loose SLA: an underclocked setting with medium downgrade.
        let loose = choose_pvc(&sweep, Sla::slack_pct(25.0));
        assert!(loose.cpu.underclock > 0.0);
        assert_eq!(loose.cpu.voltage, VoltageSetting::Medium);
    }

    #[test]
    fn wider_execution_unlocks_deeper_core_caps() {
        // The cores × DVFS composition: the latency headroom opened by
        // running on 4 cores lets the advisor pick a deeper (more
        // energy-saving) per-core cap than 1 core can afford, under the
        // same absolute budget.
        let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.004);
        let (_, t1) = db.trace_q5_workload_cores(1);
        let (_, t4) = db.trace_q5_workload_cores(4);
        let m1 = db.multicore(1);
        let m4 = db.multicore(4);
        // Budget: a bit above the single-core stock makespan.
        let budget = m1
            .measure_uniform(&t1, &eco_simhw::machine::MachineConfig::stock())
            .elapsed_s
            * 1.05;
        let a1 = recommend_core_cap(&m1, &t1, budget).expect("stock fits");
        let a4 = recommend_core_cap(&m4, &t4, budget).expect("stock fits");
        assert!(
            a4.cap < a1.cap,
            "4 cores should afford a deeper cap: {} vs {}",
            a4.cap,
            a1.cap
        );
        assert!(a4.energy_ratio < 1.0, "the cap saves energy");
        assert!(a4.seconds <= budget && a1.seconds <= budget);
        // A hopeless budget yields no recommendation.
        assert!(recommend_core_cap(&m1, &t1, budget * 1e-6).is_none());
    }

    #[test]
    fn qed_estimate_tracks_measured_outcome() {
        let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.004);
        let est = estimate_qed(db.catalog(), db.machine(), 35, true);
        let actual = run_qed(&db, 35, MachineConfig::stock(), true);
        // The estimator omits gaps/parse/split detail; demand agreement
        // within 35 % — enough to rank batch sizes.
        let e_rel = (est.energy_ratio - actual.energy_ratio).abs() / actual.energy_ratio;
        assert!(
            e_rel < 0.35,
            "energy est {} vs {}",
            est.energy_ratio,
            actual.energy_ratio
        );
        let r_rel = (est.response_ratio - actual.response_ratio).abs() / actual.response_ratio;
        assert!(
            r_rel < 0.35,
            "resp est {} vs {}",
            est.response_ratio,
            actual.response_ratio
        );
    }

    #[test]
    fn qed_batch_choice_is_largest_within_sla() {
        let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.004);
        let chosen = choose_qed_batch(db.catalog(), db.machine(), 50, Sla::slack_pct(100.0), true);
        let e = chosen.expect("some batch fits a 2x response SLA");
        assert!(e.batch_size >= 2);
        assert!(e.response_ratio <= 2.0);
        // A hopeless SLA yields nothing.
        let none = choose_qed_batch(db.catalog(), db.machine(), 50, Sla::slack_pct(-0.0), true);
        assert!(none.is_none() || none.unwrap().response_ratio <= 1.0);
    }

    #[test]
    fn plan_ranking_prefers_early_filtering() {
        let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.004);
        let params = eco_tpch::Q5Params::new("ASIA", 1994);
        let ranked = rank_plans_by_energy(
            &db,
            vec![
                (
                    "late-filter",
                    eco_query::plans::q5_plan_late_filter(db.catalog(), &params),
                ),
                ("pushdown", eco_query::plans::q5_plan(db.catalog(), &params)),
            ],
            MachineConfig::stock(),
        );
        assert_eq!(
            ranked[0].name, "pushdown",
            "filter pushdown must win on energy"
        );
        assert!(ranked[0].cpu_joules < ranked[1].cpu_joules * 0.7);
        // Both plans agree on the answer (order-insensitive compare).
        let mut a = eco_query::plans::q5_rows_to_pairs(&ranked[0].rows);
        a.sort();
        let mut b = eco_query::plans::q5_rows_to_pairs(&ranked[1].rows);
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn access_path_advice_crosses_over_with_selectivity() {
        let db = EcoDb::tpch(EngineProfile::CommercialDisk, 0.004);
        let entry = db
            .create_index("ix_adv_orderkey", "lineitem", "l_orderkey")
            .expect("disk profile");
        // Uniform-scatter break-even sits near 0.02 % selectivity: a
        // random-priced page fetch costs ~seek/burst where the scan
        // pays only stream time, so the probe must touch very few
        // pages to win. Point-lookup territory qualifies; a 1 % range
        // does not.
        let narrow = choose_access_path(db.catalog(), &entry, 5e-5, db.machine());
        assert_eq!(narrow.path, AccessPath::IndexProbe);
        assert!(narrow.index_joules < narrow.scan_joules);
        let full = choose_access_path(db.catalog(), &entry, 1.0, db.machine());
        assert_eq!(full.path, AccessPath::SeqScan);
        assert!(full.index_joules > full.scan_joules);
        // The scan streams every page either way; only the emission
        // side grows with selectivity.
        assert!(full.scan_joules >= narrow.scan_joules);
        assert!(full.index_joules > 10.0 * narrow.index_joules);
    }

    #[test]
    fn prediction_monitor_flags_drift() {
        let mut m = PredictionMonitor::new(0.2);
        assert_eq!(m.observe(10.0, 11.0), Adaptation::Keep);
        assert_eq!(m.observe(10.0, 14.0), Adaptation::Replan);
        assert!(m.calibration() > 1.0);
    }
}
