//! # eco-core — energy-aware query processing (the ecoDB contribution)
//!
//! The paper's thesis: treat **energy as a first-class performance
//! metric** in a DBMS, and provide mechanisms that *trade energy for
//! performance*. This crate implements both of its concrete mechanisms
//! plus the supporting machinery its vision calls for:
//!
//! * [`pvc`] — **P**rocessor **V**oltage/frequency **C**ontrol: sweep
//!   FSB underclocking × voltage downgrades, measure each operating
//!   point, compare against the theoretical `EDP ∝ V²/F` model, and
//!   pick settings under an SLA (paper §3, Figs 1–4).
//! * [`qed`] — **Q**uery **E**nergy-efficiency by introducing explicit
//!   **D**elays: queue structurally-similar selections, merge a batch
//!   via predicate disjunction (multi-query optimization), split the
//!   results, and trade average response time for per-query energy
//!   (paper §4, Fig 6).
//! * [`metrics`] — joules, the Energy-Delay Product, operating points
//!   and iso-EDP curves.
//! * [`server`] — the DBMS facade: engine profiles standing in for the
//!   paper's two systems (MySQL memory engine / commercial disk DBMS),
//!   client round trips, admission, parse accounting.
//! * [`advisor`] — choose an operating point (PVC setting, QED batch
//!   size, scan-vs-index access path) under response-time constraints;
//!   detect and react to mis-predictions (the paper's "adapt the query
//!   plan midflight").
//! * [`experiments`] — a typed harness reproducing **every** table and
//!   figure in the paper's evaluation.

pub mod advisor;
pub mod cluster;
pub mod experiments;
pub mod metrics;
pub mod pvc;
pub mod qed;
pub mod qed_model;
pub mod server;

pub use advisor::{AccessPath, AccessPathAdvice};
pub use metrics::{Edp, OperatingPoint};
pub use pvc::{PvcSweep, PvcSweepPoint};
pub use qed::{QedOutcome, QedScheme};
pub use server::{EcoDb, EngineProfile, QueryRun, ServerError};
