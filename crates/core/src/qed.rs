//! QED — Improved Query Energy-efficiency by Introducing Explicit
//! Delays (paper §4).
//!
//! Queries are delayed into an admission queue; when the queue reaches
//! a threshold the whole batch is merged by predicate disjunction
//! (multi-query optimization), run as one statement, and the result is
//! split back per query in the application. Per-query energy drops
//! (one scan, one round trip, one parse amortized over k queries) while
//! average response time rises (everyone waits for the big query).
//!
//! ## Response-time semantics (the paper is informal here)
//!
//! * **Sequential baseline**: the k queries are issued back-to-back
//!   ("think time is zero"); measured from batch start, query *i*
//!   completes at the sum of the first *i* round-trip+execution times,
//!   so the average response is the mean completion time.
//! * **QED**: batch accumulation time is *not* counted (paper: "we do
//!   not count the time that it takes for the database to collect a
//!   batch of queries"); every query then waits for the merged
//!   execution, and the splitter returns result sets in query order —
//!   query *i* responds at `gap + exec + (i/k)·split`.
//!
//! This is the unique reading consistent with the paper's three
//! remarks: degradation is most severe for the first query in the
//! batch, least for the last, and the first query's degradation grows
//! with batch size.

use eco_simhw::machine::MachineConfig;
use eco_simhw::trace::PhaseKind;
use eco_tpch::{qed_workload, QedQuery};

use crate::server::EcoDb;

/// Measured outcome of one scheme (sequential or QED) over a batch.
#[derive(Debug, Clone, Copy)]
pub struct QedScheme {
    /// Batch size.
    pub batch_size: usize,
    /// Time from batch start to last result, seconds.
    pub total_seconds: f64,
    /// Total CPU energy, joules.
    pub cpu_joules: f64,
    /// Average per-query response time, seconds.
    pub avg_response_s: f64,
    /// Response time of the first query in the batch.
    pub first_response_s: f64,
    /// Response time of the last query in the batch.
    pub last_response_s: f64,
}

impl QedScheme {
    /// Per-query energy, joules.
    pub fn joules_per_query(&self) -> f64 {
        self.cpu_joules / self.batch_size as f64
    }

    /// Per-query EDP: per-query joules × average response seconds.
    pub fn edp(&self) -> f64 {
        self.joules_per_query() * self.avg_response_s
    }
}

/// Sequential vs QED comparison for one batch size.
#[derive(Debug, Clone)]
pub struct QedOutcome {
    /// Batch size k.
    pub batch_size: usize,
    /// The sequential baseline.
    pub sequential: QedScheme,
    /// The QED scheme.
    pub qed: QedScheme,
    /// QED/sequential CPU-energy ratio (< 1 saves energy).
    pub energy_ratio: f64,
    /// QED/sequential average-response ratio (> 1 degrades response).
    pub response_ratio: f64,
    /// QED/sequential per-query EDP ratio.
    pub edp_ratio: f64,
    /// Whether QED returned byte-identical results per query.
    pub results_match: bool,
}

/// Run the paper's QED experiment for one batch size under a machine
/// configuration (the paper runs QED "at stock system settings";
/// combining QED with PVC is an extension this API permits).
pub fn run_qed(
    db: &EcoDb,
    batch_size: usize,
    config: MachineConfig,
    short_circuit: bool,
) -> QedOutcome {
    let queries = qed_workload(batch_size);

    // --- sequential baseline ---------------------------------------------
    let mut seq_trace = eco_simhw::trace::WorkTrace::new();
    let mut seq_results: Vec<Vec<eco_storage::Tuple>> = Vec::with_capacity(batch_size);
    for q in &queries {
        let (rows, t) = db.trace_selection(q);
        seq_results.push(rows);
        seq_trace.extend(t);
    }
    let seq_m = db.price(&seq_trace, config);
    // Completion time of query i = cumulative phase time through its
    // execute phase (phases alternate gap, exec).
    let mut completions = Vec::with_capacity(batch_size);
    let mut acc = 0.0;
    for pair in seq_m.phases.chunks(2) {
        for p in pair {
            acc += p.elapsed_s;
        }
        completions.push(acc);
    }
    assert_eq!(completions.len(), batch_size);
    let sequential = QedScheme {
        batch_size,
        total_seconds: seq_m.elapsed_s,
        cpu_joules: seq_m.cpu_joules,
        avg_response_s: completions.iter().sum::<f64>() / batch_size as f64,
        first_response_s: completions[0],
        last_response_s: *completions.last().expect("non-empty batch"),
    };

    // --- QED ---------------------------------------------------------------
    let (qed_results, qed_trace) = db.trace_merged_selection(&queries, short_circuit);
    let qed_m = db.price(&qed_trace, config);
    let gap_exec: f64 = qed_m
        .phases
        .iter()
        .filter(|p| p.kind != PhaseKind::ClientCompute)
        .map(|p| p.elapsed_s)
        .sum();
    let split: f64 = qed_m
        .phases
        .iter()
        .filter(|p| p.kind == PhaseKind::ClientCompute)
        .map(|p| p.elapsed_s)
        .sum();
    let k = batch_size as f64;
    let response = |i: usize| gap_exec + split * (i as f64 / k);
    let qed = QedScheme {
        batch_size,
        total_seconds: qed_m.elapsed_s,
        cpu_joules: qed_m.cpu_joules,
        avg_response_s: gap_exec + split * (k + 1.0) / (2.0 * k),
        first_response_s: response(1),
        last_response_s: response(batch_size),
    };

    let results_match = seq_results == qed_results;

    QedOutcome {
        batch_size,
        energy_ratio: qed.cpu_joules / sequential.cpu_joules,
        response_ratio: qed.avg_response_s / sequential.avg_response_s,
        edp_ratio: qed.edp() / sequential.edp(),
        sequential,
        qed,
        results_match,
    }
}

/// [`run_qed`] on the cores axis: both schemes execute morsel-parallel
/// across `workers` cores and are priced on the multi-core machine.
/// Merging stays strictly energy-positive — the merged scan's ledger is
/// the same work regardless of worker count (bit-identical to serial),
/// so QED's k-fold scan sharing composes with intra-query parallelism's
/// makespan reduction instead of competing with it.
pub fn run_qed_cores(
    db: &EcoDb,
    batch_size: usize,
    config: MachineConfig,
    short_circuit: bool,
    workers: usize,
) -> QedOutcome {
    let queries = qed_workload(batch_size);
    let mc = db.multicore(workers);

    // --- sequential baseline: k parallel statements back-to-back -------
    let mut seq_results: Vec<Vec<eco_storage::Tuple>> = Vec::with_capacity(batch_size);
    let mut completions = Vec::with_capacity(batch_size);
    let mut acc = 0.0;
    let mut seq_joules = 0.0;
    for q in &queries {
        let (rows, core_traces) = db.trace_selection_cores(q, workers);
        let m = mc.measure_uniform(&core_traces, &config);
        acc += m.elapsed_s;
        seq_joules += m.cpu_joules;
        completions.push(acc);
        seq_results.push(rows);
    }
    let sequential = QedScheme {
        batch_size,
        total_seconds: acc,
        cpu_joules: seq_joules,
        avg_response_s: completions.iter().sum::<f64>() / batch_size as f64,
        first_response_s: completions[0],
        last_response_s: *completions.last().expect("non-empty batch"),
    };

    // --- QED: one merged parallel statement ----------------------------
    let (qed_results, core_traces) =
        db.trace_merged_selection_cores(&queries, short_circuit, workers);
    let qed_m = mc.measure_uniform(&core_traces, &config);
    // The split runs on the client (core 0) after the barrier.
    let split: f64 = qed_m.per_core[0]
        .phases
        .iter()
        .filter(|p| p.kind == PhaseKind::ClientCompute)
        .map(|p| p.elapsed_s)
        .sum();
    let gap_exec = (qed_m.elapsed_s - split).max(0.0);
    let k = batch_size as f64;
    let response = |i: usize| gap_exec + split * (i as f64 / k);
    let qed = QedScheme {
        batch_size,
        total_seconds: qed_m.elapsed_s,
        cpu_joules: qed_m.cpu_joules,
        avg_response_s: gap_exec + split * (k + 1.0) / (2.0 * k),
        first_response_s: response(1),
        last_response_s: response(batch_size),
    };

    let results_match = seq_results == qed_results;

    QedOutcome {
        batch_size,
        energy_ratio: qed.cpu_joules / sequential.cpu_joules,
        response_ratio: qed.avg_response_s / sequential.avg_response_s,
        edp_ratio: qed.edp() / sequential.edp(),
        sequential,
        qed,
        results_match,
    }
}

/// The admission-control queue: delay queries until a batch forms.
/// (The paper assumes the queue "builds up in a master system that is
/// always on" — accumulation time is free from the DBMS's view.)
///
/// Generic over the queued item so the *same* threshold/drain policy
/// runs both the offline replay here (queueing [`QedQuery`]s directly)
/// and the online session batcher in `eco-server` (queueing pending
/// session requests) — one batching policy, two front ends.
#[derive(Debug, Clone)]
pub struct WorkloadManager<T = QedQuery> {
    threshold: usize,
    queue: Vec<T>,
    batches_released: usize,
}

impl<T> WorkloadManager<T> {
    /// Manager releasing batches of `threshold` queries.
    pub fn new(threshold: usize) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        Self {
            threshold,
            queue: Vec::new(),
            batches_released: 0,
        }
    }

    /// Submit a query; returns a full batch when the threshold is hit.
    pub fn submit(&mut self, q: T) -> Option<Vec<T>> {
        self.queue.push(q);
        if self.queue.len() >= self.threshold {
            self.batches_released += 1;
            Some(std::mem::take(&mut self.queue))
        } else {
            None
        }
    }

    /// Queries currently waiting.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The queued items, oldest first (admission control peeks at the
    /// backlog without releasing it).
    pub fn queued(&self) -> &[T] {
        &self.queue
    }

    /// Force-release whatever is queued (timeout path).
    pub fn drain(&mut self) -> Vec<T> {
        if !self.queue.is_empty() {
            self.batches_released += 1;
        }
        std::mem::take(&mut self.queue)
    }

    /// Batch-release threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Retune the release threshold in place. Queued items stay queued;
    /// the new threshold applies from the next submit. The online
    /// scheduler uses this to *raise* the batch size under sustained
    /// fault pressure (amortizing retry-priced I/O over more members)
    /// and to restore the planned operating point once reads recover.
    pub fn set_threshold(&mut self, threshold: usize) {
        assert!(threshold >= 1, "threshold must be at least 1");
        self.threshold = threshold;
    }

    /// Batches released so far.
    pub fn batches_released(&self) -> usize {
        self.batches_released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::EngineProfile;

    fn db() -> EcoDb {
        EcoDb::tpch(EngineProfile::MemoryEngine, 0.004)
    }

    #[test]
    fn qed_saves_energy_and_degrades_response() {
        let db = db();
        let o = run_qed(&db, 35, MachineConfig::stock(), true);
        assert!(o.results_match, "QED must not change answers");
        assert!(o.energy_ratio < 0.8, "energy ratio {}", o.energy_ratio);
        assert!(
            o.response_ratio > 1.0,
            "response ratio {}",
            o.response_ratio
        );
        assert!(o.edp_ratio < 1.0, "EDP ratio {}", o.edp_ratio);
    }

    #[test]
    fn energy_savings_diminish_with_batch_size() {
        // Paper Fig 6: "there is a diminishing decrease in energy
        // consumption" going 35 → 50.
        let db = db();
        let outcomes: Vec<QedOutcome> = [35, 40, 45, 50]
            .iter()
            .map(|&k| run_qed(&db, k, MachineConfig::stock(), true))
            .collect();
        for w in outcomes.windows(2) {
            assert!(
                w[1].energy_ratio < w[0].energy_ratio,
                "larger batches save more: {} vs {}",
                w[1].energy_ratio,
                w[0].energy_ratio
            );
        }
        let increments: Vec<f64> = outcomes
            .windows(2)
            .map(|w| w[0].energy_ratio - w[1].energy_ratio)
            .collect();
        for w in increments.windows(2) {
            assert!(w[1] <= w[0] + 0.005, "diminishing returns: {increments:?}");
        }
    }

    #[test]
    fn largest_batch_has_best_edp() {
        // Paper: "the largest batch size (of 50) … translates to the
        // best EDP change."
        let db = db();
        let o35 = run_qed(&db, 35, MachineConfig::stock(), true);
        let o50 = run_qed(&db, 50, MachineConfig::stock(), true);
        assert!(o50.edp_ratio < o35.edp_ratio);
        // Response-time ratio improves as batches grow (Fig 6 trend).
        assert!(o50.response_ratio < o35.response_ratio);
    }

    #[test]
    fn first_query_suffers_most() {
        // Degradation (vs its sequential completion) is most severe for
        // the first query, least for the last.
        let db = db();
        let o = run_qed(&db, 20, MachineConfig::stock(), true);
        let seq_first = o.sequential.first_response_s;
        let seq_last = o.sequential.last_response_s;
        let deg_first = o.qed.first_response_s / seq_first;
        let deg_last = o.qed.last_response_s / seq_last;
        assert!(
            deg_first > deg_last,
            "first {deg_first} must exceed last {deg_last}"
        );
        // And the first query's degradation grows with batch size.
        let o_big = run_qed(&db, 40, MachineConfig::stock(), true);
        let deg_first_big = o_big.qed.first_response_s / o_big.sequential.first_response_s;
        assert!(deg_first_big > deg_first);
    }

    #[test]
    fn qed_on_cores_still_saves_energy_and_answers_match() {
        let db = db();
        let serial = run_qed(&db, 20, MachineConfig::stock(), true);
        let par = run_qed_cores(&db, 20, MachineConfig::stock(), true, 4);
        assert!(par.results_match, "parallel QED must not change answers");
        assert!(par.energy_ratio < 1.0, "energy ratio {}", par.energy_ratio);
        assert!(par.response_ratio > 1.0);
        // Four cores finish the merged statement faster than one. The
        // speedup is bounded well below 4x: result emission and the
        // client-side split stay on the coordinator core by design.
        assert!(
            par.qed.total_seconds < 0.97 * serial.qed.total_seconds,
            "parallel {} vs serial {}",
            par.qed.total_seconds,
            serial.qed.total_seconds
        );
    }

    #[test]
    fn workload_manager_batches() {
        let mut wm = WorkloadManager::new(3);
        assert!(wm.submit(QedQuery { quantity: 1 }).is_none());
        assert!(wm.submit(QedQuery { quantity: 2 }).is_none());
        assert_eq!(wm.pending(), 2);
        let batch = wm.submit(QedQuery { quantity: 3 }).expect("batch ready");
        assert_eq!(batch.len(), 3);
        assert_eq!(wm.pending(), 0);
        assert_eq!(wm.batches_released(), 1);
        assert!(wm.submit(QedQuery { quantity: 4 }).is_none());
        assert_eq!(wm.drain().len(), 1);
        assert_eq!(wm.batches_released(), 2);
        assert!(wm.drain().is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold must be at least 1")]
    fn zero_threshold_rejected() {
        let _ = WorkloadManager::<QedQuery>::new(0);
    }
}
