//! Energy metrics: the Energy-Delay Product, operating points and
//! iso-EDP curves.
//!
//! The paper (§3.3–3.4) compares settings by plotting energy ratio
//! against response-time ratio relative to the stock setting, overlays
//! the curve of constant EDP (`energy_ratio × time_ratio = 1`) and
//! calls points *below* that curve "interesting" — they save a larger
//! percentage of energy than they give up in response time.

use eco_simhw::machine::{Machine, MachineConfig, Measurement};
use eco_simhw::multicore::MultiCoreMeasurement;

/// Energy-Delay Product: `joules × seconds`. Lower is better.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Edp(pub f64);

impl Edp {
    /// EDP from energy and delay.
    pub fn new(joules: f64, seconds: f64) -> Self {
        Edp(joules * seconds)
    }

    /// Ratio of this EDP over a baseline.
    pub fn ratio(self, baseline: Edp) -> f64 {
        assert!(baseline.0 > 0.0, "baseline EDP must be positive");
        self.0 / baseline.0
    }
}

/// One measured operating point of a workload under a machine setting.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// Human-readable setting label (e.g. `"5% UC / medium"`).
    pub label: String,
    /// The machine configuration measured.
    pub config: MachineConfig,
    /// Workload response time, seconds.
    pub seconds: f64,
    /// CPU energy, joules (the paper's primary metric).
    pub cpu_joules: f64,
    /// Whole-system wall energy, joules.
    pub wall_joules: f64,
}

impl OperatingPoint {
    /// Build from a measurement.
    pub fn from_measurement(
        label: impl Into<String>,
        config: MachineConfig,
        m: &Measurement,
    ) -> Self {
        Self {
            label: label.into(),
            config,
            seconds: m.elapsed_s,
            cpu_joules: m.cpu_joules,
            wall_joules: m.wall_joules,
        }
    }

    /// Build from a multi-core measurement (cores axis: the same
    /// ratios/EDP algebra applies to the barrier makespan and summed
    /// per-core energy).
    pub fn from_multicore(
        label: impl Into<String>,
        config: MachineConfig,
        m: &MultiCoreMeasurement,
    ) -> Self {
        Self {
            label: label.into(),
            config,
            seconds: m.elapsed_s,
            cpu_joules: m.cpu_joules,
            wall_joules: m.wall_joules,
        }
    }

    /// CPU-energy EDP of this point.
    pub fn edp(&self) -> Edp {
        Edp::new(self.cpu_joules, self.seconds)
    }

    /// Energy ratio vs a baseline point (< 1 saves energy).
    pub fn energy_ratio(&self, base: &OperatingPoint) -> f64 {
        self.cpu_joules / base.cpu_joules
    }

    /// Time ratio vs a baseline point (> 1 is slower).
    pub fn time_ratio(&self, base: &OperatingPoint) -> f64 {
        self.seconds / base.seconds
    }

    /// Wall-energy ratio vs a baseline point.
    pub fn wall_energy_ratio(&self, base: &OperatingPoint) -> f64 {
        self.wall_joules / base.wall_joules
    }

    /// EDP ratio vs a baseline (< 1 is a net win; the paper reports
    /// these as "EDP −47 %" etc.).
    pub fn edp_ratio(&self, base: &OperatingPoint) -> f64 {
        self.edp().ratio(base.edp())
    }

    /// True when this point is *below* the iso-EDP curve through the
    /// baseline — the paper's "interesting" region.
    pub fn is_interesting(&self, base: &OperatingPoint) -> bool {
        self.edp_ratio(base) < 1.0
    }
}

/// The iso-EDP curve through the baseline, sampled at the given energy
/// ratios: `time_ratio = 1 / energy_ratio` (so that `E·T` is constant).
pub fn iso_edp_curve(energy_ratios: &[f64]) -> Vec<(f64, f64)> {
    energy_ratios
        .iter()
        .map(|&e| {
            assert!(e > 0.0, "energy ratio must be positive");
            (e, 1.0 / e)
        })
        .collect()
}

/// Euclidean distance from a `(energy_ratio, time_ratio)` point to the
/// iso-EDP curve (numerically minimized) — the paper reads EDP off
/// Fig 2 as "the shortest distance from the data point to the EDP
/// curve".
pub fn distance_to_iso_edp(energy_ratio: f64, time_ratio: f64) -> f64 {
    // Minimize (e-x)² + (t-1/x)² over x > 0 by dense sampling + local
    // refinement (robust, and this is a reporting aid, not a hot path).
    let f = |x: f64| {
        let dx = energy_ratio - x;
        let dy = time_ratio - 1.0 / x;
        (dx * dx + dy * dy).sqrt()
    };
    let mut best_x = energy_ratio.max(0.05);
    let mut best = f(best_x);
    let mut lo = 0.05;
    let mut hi = 4.0;
    for _ in 0..4 {
        let n = 200;
        for i in 0..=n {
            let x = lo + (hi - lo) * i as f64 / n as f64;
            let d = f(x);
            if d < best {
                best = d;
                best_x = x;
            }
        }
        let w = (hi - lo) / n as f64;
        lo = (best_x - 2.0 * w).max(1e-3);
        hi = best_x + 2.0 * w;
    }
    best
}

/// Convenience: measure a trace under several configurations and
/// return operating points (first entry is the baseline/stock run).
pub fn sweep_operating_points(
    machine: &Machine,
    trace: &eco_simhw::trace::WorkTrace,
    configs: &[(String, MachineConfig)],
) -> Vec<OperatingPoint> {
    configs
        .iter()
        .map(|(label, cfg)| {
            let m = machine.measure(trace, cfg);
            OperatingPoint::from_measurement(label.clone(), *cfg, &m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(label: &str, s: f64, j: f64) -> OperatingPoint {
        OperatingPoint {
            label: label.into(),
            config: MachineConfig::stock(),
            seconds: s,
            cpu_joules: j,
            wall_joules: j * 2.5,
        }
    }

    #[test]
    fn edp_and_ratios() {
        let base = point("stock", 48.5, 1228.7);
        let a = point("A", 50.0, 627.0); // ≈ the paper's setting A
        assert!((a.energy_ratio(&base) - 0.51).abs() < 0.01);
        assert!((a.time_ratio(&base) - 1.031).abs() < 0.01);
        assert!(a.edp_ratio(&base) < 0.55);
        assert!(a.is_interesting(&base));
    }

    #[test]
    fn worse_point_is_not_interesting() {
        let base = point("stock", 10.0, 100.0);
        let bad = point("bad", 20.0, 90.0); // 2× time for 10 % energy
        assert!(!bad.is_interesting(&base));
    }

    #[test]
    fn iso_curve_has_unit_product() {
        for (e, t) in iso_edp_curve(&[0.25, 0.5, 1.0, 2.0]) {
            assert!((e * t - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn distance_zero_on_curve_positive_off() {
        assert!(distance_to_iso_edp(0.5, 2.0) < 1e-3);
        assert!(distance_to_iso_edp(1.0, 1.0) < 1e-3);
        let below = distance_to_iso_edp(0.5, 1.0); // saves energy, mild slowdown
        assert!(below > 0.1, "clearly off-curve point: {below}");
    }

    #[test]
    #[should_panic(expected = "baseline EDP must be positive")]
    fn zero_baseline_rejected() {
        let _ = Edp(1.0).ratio(Edp(0.0));
    }

    #[test]
    fn sweep_measures_each_config_in_order() {
        use eco_simhw::cpu::{CpuConfig, VoltageSetting};
        use eco_simhw::trace::{OpClass, Phase, WorkTrace};

        let machine = Machine::paper_sut();
        let mut trace = WorkTrace::new();
        let mut p = Phase::execute("w");
        p.cpu.add(OpClass::PredEval, 2_000_000);
        trace.push(p);

        let configs = vec![
            ("stock".to_string(), MachineConfig::stock()),
            (
                "eco".to_string(),
                MachineConfig::with_cpu(CpuConfig::underclocked(0.05, VoltageSetting::Medium)),
            ),
        ];
        let points = sweep_operating_points(&machine, &trace, &configs);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].label, "stock");
        assert!(points[1].cpu_joules < points[0].cpu_joules);
        assert!(points[1].seconds > points[0].seconds);
        assert!(points[1].is_interesting(&points[0]));
    }
}
