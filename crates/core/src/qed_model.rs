//! The analytical QED response-time model (paper §4: "A simple
//! analytical model can be used to capture these effects in more
//! detail, and can be used to consider the impact on SLAs").
//!
//! Fitted from a handful of measured batch sizes, the model gives
//! closed-form per-position response times for both schemes, from which
//! deadline/percentile SLAs can be evaluated without further runs:
//!
//! * sequential: query `i` of a back-to-back batch completes at
//!   `i · (g + t₁)`;
//! * QED: the batch runs as one statement of duration
//!   `g + t_merged(k) ≈ g + a + b·k`, after which the splitter returns
//!   result sets in order, `s·k` total: query `i` responds at
//!   `g + a + b·k + (i/k)·s·k`.

use eco_simhw::machine::MachineConfig;
use eco_tpch::qed_workload;

use crate::server::EcoDb;

/// Fitted QED timing model (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QedModel {
    /// Client round-trip gap per statement.
    pub gap_s: f64,
    /// Sequential per-query service time t₁.
    pub t_single_s: f64,
    /// Merged-execution intercept `a` (scan + parse floor).
    pub merged_base_s: f64,
    /// Merged-execution slope `b` per batched query.
    pub merged_per_query_s: f64,
    /// Split time per batched query `s`.
    pub split_per_query_s: f64,
}

impl QedModel {
    /// Fit the model by measuring a single query plus two merged batch
    /// sizes (least measurements that pin the line).
    pub fn fit(db: &EcoDb, k_lo: usize, k_hi: usize) -> Self {
        assert!(k_lo >= 2 && k_hi > k_lo && k_hi <= 50);
        let cfg = MachineConfig::stock();

        let (_, single) = db.trace_selection(&qed_workload(1)[0]);
        let sm = db.price(&single, cfg);
        let gap_s = sm.phases[0].elapsed_s;
        let t_single_s = sm.phases[1].elapsed_s;

        let measure = |k: usize| -> (f64, f64) {
            let (_, trace) = db.trace_merged_selection(&qed_workload(k), true);
            let m = db.price(&trace, cfg);
            // phases: [gap, merged exec, split]
            (m.phases[1].elapsed_s, m.phases[2].elapsed_s)
        };
        let (exec_lo, split_lo) = measure(k_lo);
        let (exec_hi, split_hi) = measure(k_hi);

        let merged_per_query_s = (exec_hi - exec_lo) / (k_hi - k_lo) as f64;
        let merged_base_s = exec_lo - merged_per_query_s * k_lo as f64;
        let split_per_query_s = (split_lo / k_lo as f64 + split_hi / k_hi as f64) / 2.0;

        Self {
            gap_s,
            t_single_s,
            merged_base_s: merged_base_s.max(0.0),
            merged_per_query_s: merged_per_query_s.max(0.0),
            split_per_query_s: split_per_query_s.max(0.0),
        }
    }

    /// Merged-statement execution time for batch size `k`.
    pub fn merged_exec_s(&self, k: usize) -> f64 {
        self.merged_base_s + self.merged_per_query_s * k as f64
    }

    /// Sequential response of query `i` (1-based) in a batch.
    pub fn sequential_response_s(&self, i: usize) -> f64 {
        i as f64 * (self.gap_s + self.t_single_s)
    }

    /// QED response of query `i` (1-based) in a batch of `k`.
    pub fn qed_response_s(&self, i: usize, k: usize) -> f64 {
        assert!(i >= 1 && i <= k);
        self.gap_s + self.merged_exec_s(k) + self.split_per_query_s * i as f64
    }

    /// Average response ratio (QED / sequential) for batch size `k`.
    pub fn avg_response_ratio(&self, k: usize) -> f64 {
        let kf = k as f64;
        let seq_avg = (kf + 1.0) / 2.0 * (self.gap_s + self.t_single_s);
        let qed_avg =
            self.gap_s + self.merged_exec_s(k) + self.split_per_query_s * (kf + 1.0) / 2.0;
        qed_avg / seq_avg
    }

    /// Degradation of the first query in the batch (the worst case the
    /// paper calls out): `qed_response(1) / sequential_response(1)`.
    pub fn first_query_degradation(&self, k: usize) -> f64 {
        self.qed_response_s(1, k) / self.sequential_response_s(1)
    }

    /// Fraction of the batch meeting a response deadline, per scheme.
    pub fn deadline_fractions(&self, k: usize, deadline_s: f64) -> (f64, f64) {
        let seq = (1..=k)
            .filter(|&i| self.sequential_response_s(i) <= deadline_s)
            .count() as f64
            / k as f64;
        let qed = (1..=k)
            .filter(|&i| self.qed_response_s(i, k) <= deadline_s)
            .count() as f64
            / k as f64;
        (seq, qed)
    }

    /// Largest batch size (≤ `max_k`) whose `percentile` fraction of
    /// queries still meets `deadline_s` under QED. `None` when even a
    /// batch of 2 misses it.
    pub fn max_batch_for_deadline(
        &self,
        max_k: usize,
        deadline_s: f64,
        percentile: f64,
    ) -> Option<usize> {
        assert!((0.0..=1.0).contains(&percentile));
        (2..=max_k.min(50))
            .rev()
            .find(|&k| self.deadline_fractions(k, deadline_s).1 >= percentile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qed::run_qed;
    use crate::server::EngineProfile;

    fn model() -> (EcoDb, QedModel) {
        let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.004);
        let m = QedModel::fit(&db, 10, 40);
        (db, m)
    }

    #[test]
    fn fitted_parameters_are_positive_and_ordered() {
        let (_, m) = model();
        assert!(m.t_single_s > 0.0);
        assert!(m.gap_s > 0.0);
        assert!(m.merged_per_query_s > 0.0);
        assert!(m.split_per_query_s > 0.0);
        // A merged batch of k is much cheaper than k singles.
        assert!(m.merged_exec_s(40) < 40.0 * m.t_single_s);
    }

    #[test]
    fn model_predicts_measured_response_ratio() {
        let (db, m) = model();
        for k in [20usize, 35, 50] {
            let predicted = m.avg_response_ratio(k);
            let measured = run_qed(&db, k, MachineConfig::stock(), true).response_ratio;
            let rel = (predicted - measured).abs() / measured;
            assert!(
                rel < 0.10,
                "k={k}: model {predicted:.3} vs measured {measured:.3}"
            );
        }
    }

    #[test]
    fn response_positions_are_monotone() {
        let (_, m) = model();
        for k in [10usize, 30] {
            for i in 1..k {
                assert!(m.qed_response_s(i, k) < m.qed_response_s(i + 1, k));
                assert!(m.sequential_response_s(i) < m.sequential_response_s(i + 1));
            }
        }
    }

    #[test]
    fn first_query_degradation_grows_with_batch_size() {
        // Paper: "the degradation in response time for the first query
        // increases as the batch size increases."
        let (_, m) = model();
        let d20 = m.first_query_degradation(20);
        let d40 = m.first_query_degradation(40);
        assert!(d40 > d20, "{d40} vs {d20}");
        assert!(d20 > 1.0, "the first query always degrades");
    }

    #[test]
    fn deadline_fractions_behave() {
        let (_, m) = model();
        let k = 30;
        // A deadline past the merged completion admits everything.
        let generous = m.qed_response_s(k, k) + 1.0;
        assert_eq!(m.deadline_fractions(k, generous), (1.0, 1.0));
        // A deadline before the merged statement finishes admits no QED
        // query but some sequential ones.
        let tight = m.gap_s + m.merged_exec_s(k) * 0.5;
        let (seq, qed) = m.deadline_fractions(k, tight);
        assert_eq!(qed, 0.0);
        assert!(seq > 0.0);
    }

    #[test]
    fn sla_batch_choice() {
        let (_, m) = model();
        // Deadline that batch 10's last query meets comfortably.
        let deadline = m.qed_response_s(10, 10) * 1.05;
        let k = m
            .max_batch_for_deadline(50, deadline, 1.0)
            .expect("some batch fits");
        assert!(k >= 10, "at least batch 10 fits, got {k}");
        // Impossible deadline.
        assert_eq!(m.max_batch_for_deadline(50, 0.0, 0.5), None);
    }
}
