//! Cluster-level ("global") energy techniques — the other half of the
//! paper's taxonomy (§1: global techniques "change some aspect of how
//! the entire system is managed"; §2: "scheduling and using techniques
//! to turn entire servers off when not required").
//!
//! A deterministic discrete-event simulation of a small DB cluster:
//! queries arrive on a fixed schedule, a placement policy routes each
//! to a server, idle servers may be put to sleep and woken on demand
//! (paying a wake latency). Energy integrates per-server busy/idle/
//! sleep residencies using power levels taken from the machine model.

use eco_simhw::machine::{Machine, MachineConfig};
use eco_simhw::power::CpuPowerModel;

/// Per-server power levels, watts (derived from the machine model via
/// [`ServerPower::from_machine`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerPower {
    /// Executing a query.
    pub busy_w: f64,
    /// Powered on, idle.
    pub idle_w: f64,
    /// Asleep (suspend-to-RAM class).
    pub sleep_w: f64,
}

impl ServerPower {
    /// Derive busy/idle levels from the simulated machine (wall power
    /// for one server box) and a sleep level.
    pub fn from_machine(machine: &Machine, config: &MachineConfig) -> Self {
        let cpu = CpuPowerModel::new(machine.cpu_spec.clone());
        let top = machine.cpu_spec.top_pstate();
        let bottom = machine.cpu_spec.bottom_pstate();
        let busy_cpu = cpu.package_busy_w(&config.cpu, top, 1.0, 0.85);
        let idle_cpu = cpu.package_halt_w(&config.cpu, bottom, 0.0);
        let fixed = machine.mem.idle_power_w()
            + machine.disk.idle_power_w()
            + eco_simhw::calib::MOBO_DC_W
            + eco_simhw::calib::GPU_DC_W;
        Self {
            busy_w: machine.psu.wall_power_w(busy_cpu + fixed + 3.0),
            idle_w: machine.psu.wall_power_w(idle_cpu + fixed),
            sleep_w: machine.psu.standby_power_w() + 2.0,
        }
    }
}

/// Placement / power-management policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Spread load round-robin; every server stays powered on.
    AllOnRoundRobin,
    /// Pack load onto the fewest servers (first server whose queue is
    /// shortest among the awake ones, preferring lower indexes); sleep
    /// a server once it has been idle for `idle_timeout_s`, wake on
    /// demand paying `wake_latency_s`.
    Consolidate {
        /// Idle seconds before a server sleeps.
        idle_timeout_s: f64,
        /// Seconds to wake a sleeping server.
        wake_latency_s: f64,
    },
}

/// One incoming query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Arrival time, seconds from simulation start.
    pub arrival_s: f64,
    /// Service time, seconds.
    pub service_s: f64,
}

/// Build a deterministic open arrival stream: `n` jobs at a fixed
/// inter-arrival spacing.
pub fn uniform_stream(n: usize, inter_arrival_s: f64, service_s: f64) -> Vec<Job> {
    (0..n)
        .map(|i| Job {
            arrival_s: i as f64 * inter_arrival_s,
            service_s,
        })
        .collect()
}

/// Simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Total wall energy across servers, joules.
    pub energy_j: f64,
    /// Mean response time (completion − arrival), seconds.
    pub avg_response_s: f64,
    /// Maximum response time, seconds.
    pub max_response_s: f64,
    /// Simulation horizon (last completion), seconds.
    pub horizon_s: f64,
    /// Per-server busy seconds.
    pub busy_s: Vec<f64>,
    /// Per-server sleep seconds.
    pub sleep_s: Vec<f64>,
}

impl ClusterOutcome {
    /// Per-query energy, joules.
    pub fn joules_per_query(&self, n_jobs: usize) -> f64 {
        self.energy_j / n_jobs.max(1) as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct ServerState {
    /// Time the server finishes its current work queue.
    free_at: f64,
    /// Whether the server is asleep at `free_at` + timeout logic.
    asleep_since: Option<f64>,
    busy_s: f64,
    sleep_s: f64,
    last_active: f64,
}

/// Run the simulation.
pub fn simulate(
    n_servers: usize,
    power: ServerPower,
    policy: Policy,
    jobs: &[Job],
) -> ClusterOutcome {
    assert!(n_servers >= 1, "need at least one server");
    assert!(!jobs.is_empty(), "need at least one job");
    let mut servers = vec![
        ServerState {
            free_at: 0.0,
            asleep_since: match policy {
                // Consolidation starts with only server 0 awake.
                Policy::Consolidate { .. } => Some(0.0),
                Policy::AllOnRoundRobin => None,
            },
            busy_s: 0.0,
            sleep_s: 0.0,
            last_active: 0.0,
        };
        n_servers
    ];
    if let Policy::Consolidate { .. } = policy {
        servers[0].asleep_since = None;
    }

    let mut responses = Vec::with_capacity(jobs.len());
    let mut rr = 0usize;

    for job in jobs {
        // Apply sleep transitions up to this arrival (consolidation).
        if let Policy::Consolidate { idle_timeout_s, .. } = policy {
            for s in servers.iter_mut() {
                if s.asleep_since.is_none() {
                    let idle_start = s.free_at.max(s.last_active);
                    if job.arrival_s > idle_start + idle_timeout_s {
                        s.asleep_since = Some(idle_start + idle_timeout_s);
                    }
                }
            }
            // Never let every server sleep: keep the most recently
            // active one awake.
            if servers.iter().all(|s| s.asleep_since.is_some()) {
                let keep = servers
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        a.last_active.partial_cmp(&b.last_active).expect("no NaN")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let s = &mut servers[keep];
                if let Some(since) = s.asleep_since.take() {
                    s.sleep_s += (job.arrival_s - since).max(0.0);
                }
            }
        }

        let (idx, wake_penalty) = match policy {
            Policy::AllOnRoundRobin => {
                let i = rr % n_servers;
                rr += 1;
                (i, 0.0)
            }
            Policy::Consolidate { wake_latency_s, .. } => {
                // Prefer an awake server that is free (or soonest free);
                // wake the next sleeping one only if every awake server
                // is backlogged past the wake latency.
                let awake_best = servers
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.asleep_since.is_none())
                    .min_by(|(_, a), (_, b)| a.free_at.partial_cmp(&b.free_at).expect("no NaN"))
                    .map(|(i, s)| (i, s.free_at));
                let sleeping = servers.iter().position(|s| s.asleep_since.is_some());
                match (awake_best, sleeping) {
                    (Some((i, free_at)), Some(j)) if free_at > job.arrival_s + wake_latency_s => {
                        // Waking is faster than waiting in line.
                        let s = &mut servers[j];
                        if let Some(since) = s.asleep_since.take() {
                            s.sleep_s += (job.arrival_s - since).max(0.0);
                        }
                        let _ = i;
                        (j, wake_latency_s)
                    }
                    (Some((i, _)), _) => (i, 0.0),
                    (None, Some(j)) => {
                        let s = &mut servers[j];
                        if let Some(since) = s.asleep_since.take() {
                            s.sleep_s += (job.arrival_s - since).max(0.0);
                        }
                        (j, wake_latency_s)
                    }
                    (None, None) => unreachable!("some server is always awake"),
                }
            }
        };

        let s = &mut servers[idx];
        let start = (job.arrival_s + wake_penalty).max(s.free_at);
        let done = start + job.service_s;
        s.busy_s += job.service_s;
        s.free_at = done;
        s.last_active = done;
        responses.push(done - job.arrival_s);
    }

    let horizon = servers
        .iter()
        .map(|s| s.free_at)
        .fold(0.0_f64, f64::max)
        .max(jobs.last().expect("non-empty").arrival_s);

    // Close out sleep residencies at the horizon.
    let mut energy = 0.0;
    let mut busy_out = Vec::with_capacity(n_servers);
    let mut sleep_out = Vec::with_capacity(n_servers);
    for s in servers.iter_mut() {
        if let Some(since) = s.asleep_since.take() {
            s.sleep_s += (horizon - since).max(0.0);
        }
        let idle = (horizon - s.busy_s - s.sleep_s).max(0.0);
        energy += s.busy_s * power.busy_w + idle * power.idle_w + s.sleep_s * power.sleep_w;
        busy_out.push(s.busy_s);
        sleep_out.push(s.sleep_s);
    }

    ClusterOutcome {
        energy_j: energy,
        avg_response_s: responses.iter().sum::<f64>() / responses.len() as f64,
        max_response_s: responses.iter().copied().fold(0.0, f64::max),
        horizon_s: horizon,
        busy_s: busy_out,
        sleep_s: sleep_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power() -> ServerPower {
        ServerPower::from_machine(&Machine::paper_sut(), &MachineConfig::stock())
    }

    #[test]
    fn power_levels_ordered() {
        let p = power();
        assert!(p.busy_w > p.idle_w, "{p:?}");
        assert!(p.idle_w > p.sleep_w, "{p:?}");
        assert!(p.sleep_w > 0.0);
    }

    #[test]
    fn consolidation_saves_energy_at_low_load() {
        // Data centers "typically operate at low loads most of the
        // time" (§2): at 10 % load, sleeping idle servers must win.
        let p = power();
        let jobs = uniform_stream(200, 1.0, 0.1); // 10 % offered load per server-second
        let all_on = simulate(4, p, Policy::AllOnRoundRobin, &jobs);
        let consolidated = simulate(
            4,
            p,
            Policy::Consolidate {
                idle_timeout_s: 2.0,
                wake_latency_s: 0.5,
            },
            &jobs,
        );
        assert!(
            consolidated.energy_j < 0.6 * all_on.energy_j,
            "consolidation: {} vs all-on {}",
            consolidated.energy_j,
            all_on.energy_j
        );
        // The energy is bought with (bounded) extra latency.
        assert!(consolidated.avg_response_s >= all_on.avg_response_s);
    }

    #[test]
    fn consolidation_uses_fewer_servers() {
        let p = power();
        let jobs = uniform_stream(100, 0.5, 0.05);
        let c = simulate(
            4,
            p,
            Policy::Consolidate {
                idle_timeout_s: 5.0,
                wake_latency_s: 0.5,
            },
            &jobs,
        );
        let active = c.busy_s.iter().filter(|&&b| b > 0.0).count();
        assert_eq!(active, 1, "light load fits one server: {:?}", c.busy_s);
        assert!(c.sleep_s.iter().skip(1).all(|&s| s > 0.0));
    }

    #[test]
    fn high_load_wakes_extra_servers() {
        let p = power();
        // Offered load ≈ 2 server-equivalents.
        let jobs = uniform_stream(400, 0.05, 0.1);
        let c = simulate(
            4,
            p,
            Policy::Consolidate {
                idle_timeout_s: 5.0,
                wake_latency_s: 0.2,
            },
            &jobs,
        );
        let active = c.busy_s.iter().filter(|&&b| b > 0.0).count();
        assert!(active >= 2, "load needs ≥2 servers: {:?}", c.busy_s);
        // Throughput is preserved: all work got done.
        let total_busy: f64 = c.busy_s.iter().sum();
        assert!((total_busy - 400.0 * 0.1).abs() < 1e-6);
    }

    #[test]
    fn round_robin_balances() {
        let p = power();
        let jobs = uniform_stream(100, 0.5, 0.1);
        let o = simulate(4, p, Policy::AllOnRoundRobin, &jobs);
        for b in &o.busy_s {
            assert!((b - 2.5).abs() < 1e-9, "{:?}", o.busy_s);
        }
        assert_eq!(o.sleep_s.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn responses_account_for_queueing() {
        let p = power();
        // One server, overloaded: responses must grow.
        let jobs = uniform_stream(10, 0.1, 0.5);
        let o = simulate(1, p, Policy::AllOnRoundRobin, &jobs);
        assert!(o.max_response_s > 3.0, "{}", o.max_response_s);
        assert!(o.avg_response_s > o.max_response_s / 3.0);
    }

    #[test]
    fn energy_is_positive_and_scales_with_horizon() {
        let p = power();
        let short = simulate(
            2,
            p,
            Policy::AllOnRoundRobin,
            &uniform_stream(10, 0.2, 0.05),
        );
        let long = simulate(
            2,
            p,
            Policy::AllOnRoundRobin,
            &uniform_stream(100, 0.2, 0.05),
        );
        assert!(long.energy_j > short.energy_j);
        assert!(short.energy_j > 0.0);
    }
}
