//! PVC — Processor Voltage/frequency Control (paper §3).
//!
//! PVC explores the grid of FSB-underclock × voltage-downgrade settings
//! for a workload, producing the operating-point plots of Figs 1–3, and
//! compares the observed EDP against the paper's theoretical model
//! `EDP ∝ V²/F` (Fig 4). The execute-once/price-many design makes the
//! sweep cheap: the workload runs once, then each setting is priced on
//! the same trace.

use eco_simhw::cpu::{CpuConfig, VoltageSetting};
use eco_simhw::machine::{Machine, MachineConfig};
use eco_simhw::multicore::MultiCoreMachine;
use eco_simhw::trace::WorkTrace;

use crate::metrics::OperatingPoint;

/// The paper's underclock grid (stock + 5/10/15 %).
pub const PAPER_UNDERCLOCKS: [f64; 4] = [0.0, 0.05, 0.10, 0.15];

/// The paper's voltage downgrades.
pub const PAPER_VOLTAGES: [VoltageSetting; 2] = [VoltageSetting::Small, VoltageSetting::Medium];

/// One measured PVC setting.
#[derive(Debug, Clone)]
pub struct PvcSweepPoint {
    /// FSB underclock fraction.
    pub underclock: f64,
    /// Voltage setting.
    pub voltage: VoltageSetting,
    /// The measured operating point.
    pub point: OperatingPoint,
    /// CPU-energy ratio vs stock.
    pub energy_ratio: f64,
    /// Response-time ratio vs stock.
    pub time_ratio: f64,
    /// EDP ratio vs stock (< 1 is a win).
    pub edp_ratio: f64,
    /// Wall-energy ratio vs stock (the paper notes the whole-system
    /// effect is smaller, e.g. −6 % wall for −49 % CPU).
    pub wall_energy_ratio: f64,
}

/// A full PVC sweep of one workload trace.
#[derive(Debug, Clone)]
pub struct PvcSweep {
    /// The stock (baseline) operating point.
    pub stock: OperatingPoint,
    /// All non-stock settings measured.
    pub points: Vec<PvcSweepPoint>,
}

impl PvcSweep {
    /// Sweep `trace` over the cartesian grid `underclocks × voltages`.
    pub fn run(
        machine: &Machine,
        trace: &WorkTrace,
        underclocks: &[f64],
        voltages: &[VoltageSetting],
    ) -> Self {
        let stock_cfg = MachineConfig::stock();
        let stock_m = machine.measure(trace, &stock_cfg);
        let stock = OperatingPoint::from_measurement("stock", stock_cfg, &stock_m);

        let mut points = Vec::new();
        for &v in voltages {
            for &u in underclocks {
                if u == 0.0 && v == VoltageSetting::Stock {
                    continue;
                }
                let cfg = MachineConfig::with_cpu(CpuConfig::underclocked(u, v));
                let m = machine.measure(trace, &cfg);
                let point = OperatingPoint::from_measurement(cfg.cpu.label(), cfg, &m);
                points.push(PvcSweepPoint {
                    underclock: u,
                    voltage: v,
                    energy_ratio: point.energy_ratio(&stock),
                    time_ratio: point.time_ratio(&stock),
                    edp_ratio: point.edp_ratio(&stock),
                    wall_energy_ratio: point.wall_energy_ratio(&stock),
                    point,
                });
            }
        }
        Self { stock, points }
    }

    /// The paper's grid: {5, 10, 15 %} × {small, medium}.
    pub fn paper_grid(machine: &Machine, trace: &WorkTrace) -> Self {
        Self::run(machine, trace, &[0.05, 0.10, 0.15], &PAPER_VOLTAGES)
    }

    /// The cores axis: sweep the same grid over *per-core* traces from
    /// a morsel-parallel run, priced on a [`MultiCoreMachine`] (every
    /// core shares the FSB underclock, as on real hardware). Because
    /// the merged parallel ledger is bit-identical to serial execution,
    /// the energy side of each point is the multi-core pricing of
    /// exactly the same work — the sweep isolates the effect of the
    /// operating point and the core count, never of execution noise.
    pub fn run_cores(
        mc: &MultiCoreMachine,
        core_traces: &[WorkTrace],
        underclocks: &[f64],
        voltages: &[VoltageSetting],
    ) -> Self {
        let stock_cfg = MachineConfig::stock();
        let stock_m = mc.measure_uniform(core_traces, &stock_cfg);
        let stock = OperatingPoint::from_multicore("stock", stock_cfg, &stock_m);

        let mut points = Vec::new();
        for &v in voltages {
            for &u in underclocks {
                if u == 0.0 && v == VoltageSetting::Stock {
                    continue;
                }
                let cfg = MachineConfig::with_cpu(CpuConfig::underclocked(u, v));
                let m = mc.measure_uniform(core_traces, &cfg);
                let point = OperatingPoint::from_multicore(cfg.cpu.label(), cfg, &m);
                points.push(PvcSweepPoint {
                    underclock: u,
                    voltage: v,
                    energy_ratio: point.energy_ratio(&stock),
                    time_ratio: point.time_ratio(&stock),
                    edp_ratio: point.edp_ratio(&stock),
                    wall_energy_ratio: point.wall_energy_ratio(&stock),
                    point,
                });
            }
        }
        Self { stock, points }
    }

    /// The paper's grid on the cores axis.
    pub fn paper_grid_cores(mc: &MultiCoreMachine, core_traces: &[WorkTrace]) -> Self {
        Self::run_cores(mc, core_traces, &[0.05, 0.10, 0.15], &PAPER_VOLTAGES)
    }

    /// Points for one voltage setting, ordered by underclock.
    pub fn points_for(&self, voltage: VoltageSetting) -> Vec<&PvcSweepPoint> {
        let mut v: Vec<&PvcSweepPoint> = self
            .points
            .iter()
            .filter(|p| p.voltage == voltage)
            .collect();
        v.sort_by(|a, b| a.underclock.partial_cmp(&b.underclock).expect("no NaN"));
        v
    }

    /// The setting with the lowest EDP (may be none if every point is
    /// worse than stock — then stock wins).
    pub fn best_edp(&self) -> Option<&PvcSweepPoint> {
        self.points
            .iter()
            .filter(|p| p.edp_ratio < 1.0)
            .min_by(|a, b| a.edp_ratio.partial_cmp(&b.edp_ratio).expect("no NaN"))
    }

    /// The most energy-saving setting whose slowdown stays within the
    /// SLA (`time_ratio ≤ max_time_ratio`).
    pub fn best_energy_under_sla(&self, max_time_ratio: f64) -> Option<&PvcSweepPoint> {
        self.points
            .iter()
            .filter(|p| p.time_ratio <= max_time_ratio)
            .min_by(|a, b| a.energy_ratio.partial_cmp(&b.energy_ratio).expect("no NaN"))
    }
}

/// The paper's theoretical EDP model (§3.4): with power `C·V²·F` and
/// time `∝ 1/F`, `EDP = power × time² ∝ V²/F`. Returns the model value
/// *normalized to the stock setting* for comparability with observed
/// EDP ratios (Fig 4 plots the two on separate axes; normalizing makes
/// the shapes directly overlayable).
pub fn theoretical_edp_ratio(machine: &Machine, config: &CpuConfig, utilization: f64) -> f64 {
    let spec = &machine.cpu_spec;
    let stock = CpuConfig::stock();
    let model = |cfg: &CpuConfig| {
        let p = cfg.active_top_pstate(spec);
        let v = cfg.effective_voltage(p, utilization);
        let f = cfg.top_freq_hz(spec);
        v * v / f
    };
    model(config) / model(&stock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_simhw::trace::{OpClass, Phase};

    fn workload_trace() -> WorkTrace {
        let mut t = WorkTrace::new();
        for i in 0..4 {
            let mut p = Phase::execute(format!("q{i}"));
            p.cpu.add(OpClass::PredEval, 4_000_000);
            p.cpu.add(OpClass::TupleFetch, 4_000_000);
            p.mem_stream_bytes = 200 << 20;
            t.push(p);
            t.push(Phase::client_gap(30_000_000));
        }
        t
    }

    #[test]
    fn sweep_covers_grid_and_ratios_are_sane() {
        let machine = Machine::paper_sut();
        let sweep = PvcSweep::paper_grid(&machine, &workload_trace());
        assert_eq!(sweep.points.len(), 6);
        for p in &sweep.points {
            assert!(p.energy_ratio > 0.0 && p.energy_ratio < 1.0, "{p:?}");
            assert!(p.time_ratio > 1.0, "underclocking must cost time: {p:?}");
            // Wall savings are smaller than CPU savings (paper §3.3).
            assert!(p.wall_energy_ratio > p.energy_ratio);
        }
    }

    #[test]
    fn five_percent_is_edp_optimal_on_the_grid() {
        // Paper: "underclocking beyond 5% actually worsens the EDP!"
        let machine = Machine::paper_sut();
        let sweep = PvcSweep::paper_grid(&machine, &workload_trace());
        for v in PAPER_VOLTAGES {
            let pts = sweep.points_for(v);
            assert_eq!(pts.len(), 3);
            assert!(pts[0].edp_ratio < pts[1].edp_ratio, "{v:?} 5% vs 10%");
            assert!(pts[1].edp_ratio < pts[2].edp_ratio, "{v:?} 10% vs 15%");
        }
        let best = sweep.best_edp().expect("a winning point exists");
        assert!((best.underclock - 0.05).abs() < 1e-9);
        assert_eq!(best.voltage, VoltageSetting::Medium);
    }

    #[test]
    fn medium_beats_small_at_same_underclock() {
        let machine = Machine::paper_sut();
        let sweep = PvcSweep::paper_grid(&machine, &workload_trace());
        let small = sweep.points_for(VoltageSetting::Small);
        let medium = sweep.points_for(VoltageSetting::Medium);
        for (s, m) in small.iter().zip(&medium) {
            assert!(m.energy_ratio < s.energy_ratio);
            assert!(m.edp_ratio < s.edp_ratio);
        }
    }

    #[test]
    fn sla_selection_respects_time_bound() {
        let machine = Machine::paper_sut();
        let sweep = PvcSweep::paper_grid(&machine, &workload_trace());
        let strict = sweep.best_energy_under_sla(1.0);
        assert!(strict.is_none(), "nothing beats stock time");
        let relaxed = sweep
            .best_energy_under_sla(1.10)
            .expect("a setting fits a 10% slack");
        assert!(relaxed.time_ratio <= 1.10);
        // The chosen point saves real energy.
        assert!(relaxed.energy_ratio < 0.9);
    }

    #[test]
    fn theoretical_edp_rises_with_underclock_at_fixed_voltage() {
        // V constant, F falling ⇒ V²/F rising — the §3.4 explanation of
        // why deep underclocking loses.
        let machine = Machine::paper_sut();
        let util = 0.9;
        let r5 = theoretical_edp_ratio(
            &machine,
            &CpuConfig::underclocked(0.05, VoltageSetting::Medium),
            util,
        );
        let r10 = theoretical_edp_ratio(
            &machine,
            &CpuConfig::underclocked(0.10, VoltageSetting::Medium),
            util,
        );
        let r15 = theoretical_edp_ratio(
            &machine,
            &CpuConfig::underclocked(0.15, VoltageSetting::Medium),
            util,
        );
        assert!(r5 < r10 && r10 < r15);
        // And the downgrade makes all of them beat stock.
        assert!(r5 < 1.0);
    }

    #[test]
    fn cores_sweep_keeps_paper_shape_and_scales_time() {
        // The PVC tradeoff survives the cores axis: same grid shape,
        // with the multi-core makespan well under the single-core time.
        let machine = Machine::paper_sut();
        let trace = workload_trace();
        let serial = PvcSweep::paper_grid(&machine, &trace);

        // Split the workload's execute phases round-robin across cores.
        let cores = 4;
        let mut per_core: Vec<WorkTrace> = (0..cores).map(|_| WorkTrace::new()).collect();
        for (i, p) in trace.phases().iter().enumerate() {
            per_core[i % cores].push(p.clone());
        }
        let mc = eco_simhw::multicore::MultiCoreMachine { machine, cores };
        let sweep = PvcSweep::run_cores(&mc, &per_core, &[0.05, 0.10, 0.15], &PAPER_VOLTAGES);
        assert_eq!(sweep.points.len(), 6);
        assert!(
            sweep.stock.seconds < 0.6 * serial.stock.seconds,
            "parallel makespan"
        );
        for p in &sweep.points {
            assert!(p.energy_ratio > 0.0 && p.energy_ratio < 1.0, "{p:?}");
            assert!(p.time_ratio > 1.0, "{p:?}");
        }
        // 5% underclock still EDP-optimal on the grid at 4 cores.
        let best = sweep.best_edp().expect("a winning point");
        assert!((best.underclock - 0.05).abs() < 1e-9);
    }

    #[test]
    fn observed_edp_tracks_theoretical_shape() {
        // Fig 4's claim: the observed EDP "closely matches" V²/F in
        // shape. Check rank agreement across the sweep.
        let machine = Machine::paper_sut();
        let sweep = PvcSweep::paper_grid(&machine, &workload_trace());
        let util = 0.9;
        for v in PAPER_VOLTAGES {
            let pts = sweep.points_for(v);
            let theory: Vec<f64> = pts
                .iter()
                .map(|p| {
                    theoretical_edp_ratio(&machine, &CpuConfig::underclocked(p.underclock, v), util)
                })
                .collect();
            for w in theory.windows(2) {
                assert!(w[0] < w[1], "theory must be monotone");
            }
            for w in pts.windows(2) {
                assert!(w[0].edp_ratio < w[1].edp_ratio, "observed must be monotone");
            }
        }
    }
}
