//! Calibration diagnostic: prints the raw numbers behind every
//! headline experiment at one glance (used when tuning
//! `eco-simhw::calib` constants; see DESIGN.md §2 calibration policy).
//!
//! ```text
//! cargo run -p eco-core --example diag --release
//! ```

use eco_core::experiments;
use eco_core::qed::run_qed;
use eco_core::server::{EcoDb, EngineProfile};
use eco_simhw::machine::MachineConfig;

fn main() {
    let scale = 0.004;
    // warm/cold
    let wc = experiments::warm_cold(scale);
    println!(
        "warm: {:.3}s cpu {:.1}J disk {:.1}J",
        wc.warm.seconds, wc.warm.cpu_joules, wc.warm.disk_joules
    );
    println!(
        "cold: {:.3}s cpu {:.1}J disk {:.1}J",
        wc.cold.seconds, wc.cold.cpu_joules, wc.cold.disk_joules
    );

    // profiles utilization
    for p in [EngineProfile::MemoryEngine, EngineProfile::CommercialDisk] {
        let db = EcoDb::tpch(p, scale);
        if p == EngineProfile::CommercialDisk {
            db.warm_up();
        }
        let r = db.run_q5_workload(MachineConfig::stock());
        println!(
            "{}: {:.3}s util {:.2} cpuW {:.1} cpuJ {:.1} diskJ {:.1}",
            p.name(),
            r.measurement.elapsed_s,
            r.measurement.utilization,
            r.measurement.avg_cpu_w,
            r.measurement.cpu_joules,
            r.measurement.disk_joules
        );
    }

    // QED
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, scale);
    for k in [35, 40, 45, 50] {
        let o = run_qed(&db, k, MachineConfig::stock(), true);
        println!("qed k={k}: E {:.3} resp {:.3} edp {:.3} (seq avg {:.4}s qed avg {:.4}s; seq J {:.1} qed J {:.1})",
            o.energy_ratio, o.response_ratio, o.edp_ratio,
            o.sequential.avg_response_s, o.qed.avg_response_s,
            o.sequential.cpu_joules, o.qed.cpu_joules);
    }

    // PVC figs
    let f1 = experiments::fig1(scale);
    println!("{}", experiments::pvc_report("fig1 commercial", &f1));
    let f3 = experiments::fig3(scale);
    println!("{}", experiments::pvc_report("fig3 mysql", &f3));
}
