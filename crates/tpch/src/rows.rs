//! Row types for the eight TPC-H tables.
//!
//! Money values are fixed-point cents in `i64` (TPC-H decimals have two
//! fraction digits); percentages (`l_discount`, `l_tax`) are basis
//! points out of 100 in `i64` (e.g. `7` = 0.07). Dates are
//! [`crate::Date`] day offsets.

use crate::dates::Date;

/// `REGION` — 5 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Primary key, 0..5.
    pub r_regionkey: i64,
    /// Region name (`"ASIA"`, ...).
    pub r_name: String,
    /// Filler comment.
    pub r_comment: String,
}

/// `NATION` — 25 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Nation {
    /// Primary key, 0..25.
    pub n_nationkey: i64,
    /// Nation name.
    pub n_name: String,
    /// FK → region.
    pub n_regionkey: i64,
    /// Filler comment.
    pub n_comment: String,
}

/// `SUPPLIER` — SF × 10 000 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Supplier {
    /// Primary key, 1-based.
    pub s_suppkey: i64,
    /// `Supplier#<key>`.
    pub s_name: String,
    /// Street address.
    pub s_address: String,
    /// FK → nation, uniform.
    pub s_nationkey: i64,
    /// Phone with nation country code.
    pub s_phone: String,
    /// Account balance, cents in [-999.99, 9999.99].
    pub s_acctbal: i64,
    /// Filler comment.
    pub s_comment: String,
}

/// `CUSTOMER` — SF × 150 000 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Customer {
    /// Primary key, 1-based.
    pub c_custkey: i64,
    /// `Customer#<key>`.
    pub c_name: String,
    /// Street address.
    pub c_address: String,
    /// FK → nation, uniform.
    pub c_nationkey: i64,
    /// Phone with nation country code.
    pub c_phone: String,
    /// Account balance, cents.
    pub c_acctbal: i64,
    /// Market segment.
    pub c_mktsegment: String,
    /// Filler comment.
    pub c_comment: String,
}

/// `PART` — SF × 200 000 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Part {
    /// Primary key, 1-based.
    pub p_partkey: i64,
    /// Colour-pool name.
    pub p_name: String,
    /// `Manufacturer#N`, N in 1..=5.
    pub p_mfgr: String,
    /// `Brand#MN`.
    pub p_brand: String,
    /// Three-syllable type.
    pub p_type: String,
    /// Size 1..=50.
    pub p_size: i64,
    /// Container description.
    pub p_container: String,
    /// Retail price, cents (spec formula).
    pub p_retailprice: i64,
    /// Filler comment.
    pub p_comment: String,
}

/// `PARTSUPP` — 4 rows per part.
#[derive(Debug, Clone, PartialEq)]
pub struct PartSupp {
    /// FK → part.
    pub ps_partkey: i64,
    /// FK → supplier (spec permutation formula).
    pub ps_suppkey: i64,
    /// Available quantity 1..=9999.
    pub ps_availqty: i64,
    /// Supply cost, cents in [1.00, 1000.00].
    pub ps_supplycost: i64,
    /// Filler comment.
    pub ps_comment: String,
}

/// `ORDERS` — SF × 1 500 000 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Order {
    /// Primary key (sparse in spec; dense here — no experiment reads key gaps).
    pub o_orderkey: i64,
    /// FK → customer.
    pub o_custkey: i64,
    /// 'F', 'O' or 'P'.
    pub o_orderstatus: char,
    /// Sum of line prices, cents.
    pub o_totalprice: i64,
    /// Uniform in the data window minus 151 days.
    pub o_orderdate: Date,
    /// Priority string.
    pub o_orderpriority: String,
    /// `Clerk#<n>`.
    pub o_clerk: String,
    /// Always 0.
    pub o_shippriority: i64,
    /// Filler comment.
    pub o_comment: String,
}

/// `LINEITEM` — 1..=7 rows per order (≈ SF × 6 000 000 rows).
#[derive(Debug, Clone, PartialEq)]
pub struct Lineitem {
    /// FK → orders.
    pub l_orderkey: i64,
    /// FK → part.
    pub l_partkey: i64,
    /// FK → supplier (a supplier of that part).
    pub l_suppkey: i64,
    /// 1-based position within the order.
    pub l_linenumber: i64,
    /// Quantity: uniform integer 1..=50 — the QED workload's predicate
    /// column (each value ⇒ 2 % selectivity, paper §4).
    pub l_quantity: i64,
    /// quantity × part retail price, cents.
    pub l_extendedprice: i64,
    /// Discount in hundredths: 0..=10 (0 % – 10 %).
    pub l_discount: i64,
    /// Tax in hundredths: 0..=8.
    pub l_tax: i64,
    /// 'R', 'A' or 'N'.
    pub l_returnflag: char,
    /// 'O' or 'F'.
    pub l_linestatus: char,
    /// Order date + 1..=121 days.
    pub l_shipdate: Date,
    /// Order date + 30..=90 days.
    pub l_commitdate: Date,
    /// Ship date + 1..=30 days.
    pub l_receiptdate: Date,
    /// Instruction string.
    pub l_shipinstruct: String,
    /// Mode string.
    pub l_shipmode: String,
    /// Filler comment.
    pub l_comment: String,
}

impl Lineitem {
    /// Revenue contribution used by Q5: `extendedprice × (1 − discount)`,
    /// in cents (rounded down).
    pub fn revenue_cents(&self) -> i64 {
        self.l_extendedprice * (100 - self.l_discount) / 100
    }
}

/// Approximate on-wire/in-page width of each row type in bytes; used by
/// the executors to charge memory-stream traffic for a scan.
pub trait RowWidth {
    /// Byte width of this row as stored.
    fn width_bytes(&self) -> u64;
}

fn s(len: usize) -> u64 {
    len as u64
}

impl RowWidth for Region {
    fn width_bytes(&self) -> u64 {
        8 + s(self.r_name.len()) + s(self.r_comment.len())
    }
}
impl RowWidth for Nation {
    fn width_bytes(&self) -> u64 {
        16 + s(self.n_name.len()) + s(self.n_comment.len())
    }
}
impl RowWidth for Supplier {
    fn width_bytes(&self) -> u64 {
        24 + s(self.s_name.len())
            + s(self.s_address.len())
            + s(self.s_phone.len())
            + s(self.s_comment.len())
    }
}
impl RowWidth for Customer {
    fn width_bytes(&self) -> u64 {
        24 + s(self.c_name.len())
            + s(self.c_address.len())
            + s(self.c_phone.len())
            + s(self.c_mktsegment.len())
            + s(self.c_comment.len())
    }
}
impl RowWidth for Part {
    fn width_bytes(&self) -> u64 {
        24 + s(self.p_name.len())
            + s(self.p_mfgr.len())
            + s(self.p_brand.len())
            + s(self.p_type.len())
            + s(self.p_container.len())
            + s(self.p_comment.len())
    }
}
impl RowWidth for PartSupp {
    fn width_bytes(&self) -> u64 {
        32 + s(self.ps_comment.len())
    }
}
impl RowWidth for Order {
    fn width_bytes(&self) -> u64 {
        40 + s(self.o_orderpriority.len()) + s(self.o_clerk.len()) + s(self.o_comment.len())
    }
}
impl RowWidth for Lineitem {
    fn width_bytes(&self) -> u64 {
        64 + s(self.l_shipinstruct.len()) + s(self.l_shipmode.len()) + s(self.l_comment.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revenue_formula() {
        let li = Lineitem {
            l_orderkey: 1,
            l_partkey: 1,
            l_suppkey: 1,
            l_linenumber: 1,
            l_quantity: 10,
            l_extendedprice: 10_000, // $100.00
            l_discount: 7,           // 7 %
            l_tax: 2,
            l_returnflag: 'N',
            l_linestatus: 'O',
            l_shipdate: Date(100),
            l_commitdate: Date(120),
            l_receiptdate: Date(110),
            l_shipinstruct: "NONE".into(),
            l_shipmode: "AIR".into(),
            l_comment: "x".into(),
        };
        assert_eq!(li.revenue_cents(), 9_300); // $93.00
        assert!(li.width_bytes() > 64);
    }
}
