//! The generator: a seeded, scale-factor-parameterized `dbgen`
//! equivalent producing all eight tables in memory.
//!
//! Cardinalities follow the spec: `region` 5, `nation` 25, `supplier`
//! SF×10 000, `customer` SF×150 000, `part` SF×200 000, `partsupp`
//! 4/part, `orders` SF×1 500 000, `lineitem` 1–7 per order (≈ SF×6 M).
//! Each table draws from its own seeded RNG stream so tables are
//! individually reproducible regardless of generation order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dates::{self, Date};
use crate::rows::*;
use crate::text;

/// A fully generated TPC-H database.
#[derive(Debug, Clone, Default)]
pub struct TpchDb {
    /// Scale factor the database was generated at.
    pub scale: f64,
    /// REGION table.
    pub region: Vec<Region>,
    /// NATION table.
    pub nation: Vec<Nation>,
    /// SUPPLIER table.
    pub supplier: Vec<Supplier>,
    /// CUSTOMER table.
    pub customer: Vec<Customer>,
    /// PART table.
    pub part: Vec<Part>,
    /// PARTSUPP table.
    pub partsupp: Vec<PartSupp>,
    /// ORDERS table.
    pub orders: Vec<Order>,
    /// LINEITEM table.
    pub lineitem: Vec<Lineitem>,
}

impl TpchDb {
    /// Total row count across all tables.
    pub fn total_rows(&self) -> usize {
        self.region.len()
            + self.nation.len()
            + self.supplier.len()
            + self.customer.len()
            + self.part.len()
            + self.partsupp.len()
            + self.orders.len()
            + self.lineitem.len()
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchGenerator {
    /// Scale factor (1.0 = the paper's commercial-DBMS experiments;
    /// 0.125 = its MySQL experiments; 0.5 = its QED experiments).
    pub scale: f64,
    /// Base seed; tables derive their streams from it.
    pub seed: u64,
}

impl Default for TpchGenerator {
    fn default() -> Self {
        Self {
            scale: 0.01,
            seed: 0x00EC0DB,
        }
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(1)
}

impl TpchGenerator {
    /// Generator at a scale factor with the default seed.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "scale factor must be positive");
        Self {
            scale,
            ..Self::default()
        }
    }

    /// Generator with an explicit seed.
    pub fn with_seed(scale: f64, seed: u64) -> Self {
        Self { scale, seed }
    }

    fn rng_for(&self, table: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ table)
    }

    /// Generate the full database.
    pub fn generate(&self) -> TpchDb {
        let region = self.gen_region();
        let nation = self.gen_nation();
        let supplier = self.gen_supplier();
        let customer = self.gen_customer();
        let part = self.gen_part();
        let partsupp = self.gen_partsupp(&part);
        let (orders, lineitem) = self.gen_orders_lineitem(&customer, &part);
        TpchDb {
            scale: self.scale,
            region,
            nation,
            supplier,
            customer,
            part,
            partsupp,
            orders,
            lineitem,
        }
    }

    fn gen_region(&self) -> Vec<Region> {
        let mut rng = self.rng_for(1);
        text::REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| Region {
                r_regionkey: i as i64,
                r_name: (*name).to_string(),
                r_comment: text::comment(&mut rng, 4),
            })
            .collect()
    }

    fn gen_nation(&self) -> Vec<Nation> {
        let mut rng = self.rng_for(2);
        text::NATIONS
            .iter()
            .enumerate()
            .map(|(i, (name, region))| Nation {
                n_nationkey: i as i64,
                n_name: (*name).to_string(),
                n_regionkey: *region,
                n_comment: text::comment(&mut rng, 5),
            })
            .collect()
    }

    fn gen_supplier(&self) -> Vec<Supplier> {
        let mut rng = self.rng_for(3);
        let n = scaled(10_000, self.scale);
        (1..=n as i64)
            .map(|k| {
                let nation = rng.gen_range(0..25i64);
                Supplier {
                    s_suppkey: k,
                    s_name: format!("Supplier#{k:09}"),
                    s_address: text::address(&mut rng),
                    s_nationkey: nation,
                    s_phone: text::phone(&mut rng, nation),
                    s_acctbal: rng.gen_range(-99_999..=999_999),
                    s_comment: text::comment(&mut rng, 6),
                }
            })
            .collect()
    }

    fn gen_customer(&self) -> Vec<Customer> {
        let mut rng = self.rng_for(4);
        let n = scaled(150_000, self.scale);
        (1..=n as i64)
            .map(|k| {
                let nation = rng.gen_range(0..25i64);
                Customer {
                    c_custkey: k,
                    c_name: format!("Customer#{k:09}"),
                    c_address: text::address(&mut rng),
                    c_nationkey: nation,
                    c_phone: text::phone(&mut rng, nation),
                    c_acctbal: rng.gen_range(-99_999..=999_999),
                    c_mktsegment: text::SEGMENTS[rng.gen_range(0..text::SEGMENTS.len())]
                        .to_string(),
                    c_comment: text::comment(&mut rng, 8),
                }
            })
            .collect()
    }

    fn gen_part(&self) -> Vec<Part> {
        let mut rng = self.rng_for(5);
        let n = scaled(200_000, self.scale);
        (1..=n as i64)
            .map(|k| {
                let mfgr = rng.gen_range(1..=5);
                let brand = mfgr * 10 + rng.gen_range(1..=5);
                Part {
                    p_partkey: k,
                    p_name: format!(
                        "{} {}",
                        text::COLORS[rng.gen_range(0..text::COLORS.len())],
                        text::COLORS[rng.gen_range(0..text::COLORS.len())]
                    ),
                    p_mfgr: format!("Manufacturer#{mfgr}"),
                    p_brand: format!("Brand#{brand}"),
                    p_type: format!(
                        "{} {} {}",
                        text::TYPE_SYLLABLE_1[rng.gen_range(0..text::TYPE_SYLLABLE_1.len())],
                        text::TYPE_SYLLABLE_2[rng.gen_range(0..text::TYPE_SYLLABLE_2.len())],
                        text::TYPE_SYLLABLE_3[rng.gen_range(0..text::TYPE_SYLLABLE_3.len())]
                    ),
                    p_size: rng.gen_range(1..=50),
                    p_container: format!(
                        "{} {}",
                        text::CONTAINER_1[rng.gen_range(0..text::CONTAINER_1.len())],
                        text::CONTAINER_2[rng.gen_range(0..text::CONTAINER_2.len())]
                    ),
                    // Spec formula: (90000 + (partkey mod 200001)/10 + 100·(partkey mod 1000)) / 100.
                    p_retailprice: 90_000 + (k % 200_001) / 10 + 100 * (k % 1_000),
                    p_comment: text::comment(&mut rng, 3),
                }
            })
            .collect()
    }

    fn gen_partsupp(&self, parts: &[Part]) -> Vec<PartSupp> {
        let mut rng = self.rng_for(6);
        let n_supp = scaled(10_000, self.scale) as i64;
        let mut out = Vec::with_capacity(parts.len() * 4);
        for p in parts {
            // Deterministic spread in the spirit of the spec's
            // permutation: stride `⌊S/4⌋` keeps the four suppliers of a
            // part distinct for any supplier count ≥ 4 (the spec formula
            // only guarantees this at full-scale supplier counts), and
            // the `(partkey−1)/S` offset rotates the pattern across
            // partkey ranges.
            let stride = (n_supp / 4).max(1);
            for i in 0..4i64 {
                let supp = (p.p_partkey - 1 + i * stride + (p.p_partkey - 1) / n_supp) % n_supp + 1;
                out.push(PartSupp {
                    ps_partkey: p.p_partkey,
                    ps_suppkey: supp,
                    ps_availqty: rng.gen_range(1..=9_999),
                    ps_supplycost: rng.gen_range(100..=100_000),
                    ps_comment: text::comment(&mut rng, 6),
                });
            }
        }
        out
    }

    fn gen_orders_lineitem(
        &self,
        customers: &[Customer],
        parts: &[Part],
    ) -> (Vec<Order>, Vec<Lineitem>) {
        let mut rng = self.rng_for(7);
        let n_orders = scaled(1_500_000, self.scale);
        let n_supp = scaled(10_000, self.scale) as i64;
        let n_cust = customers.len() as i64;
        let n_part = parts.len() as i64;
        let window_days = dates::end_date().0 - dates::start_date().0 + 1;
        let order_window = window_days - 151;
        let current = Date::from_ymd(1995, 6, 17); // spec CURRENTDATE

        let mut orders = Vec::with_capacity(n_orders);
        let mut lines = Vec::with_capacity(n_orders * 4);

        for k in 1..=n_orders as i64 {
            let custkey = rng.gen_range(1..=n_cust);
            let orderdate = Date(rng.gen_range(0..order_window));
            let n_lines = rng.gen_range(1..=7);
            let mut total = 0i64;
            let mut all_f = true;
            let mut all_o = true;

            for ln in 1..=n_lines {
                let partkey = rng.gen_range(1..=n_part);
                let quantity = rng.gen_range(1..=50i64);
                let retail = parts[(partkey - 1) as usize].p_retailprice;
                let extended = quantity * retail;
                let shipdate = orderdate.plus_days(rng.gen_range(1..=121));
                let receiptdate = shipdate.plus_days(rng.gen_range(1..=30));
                let returnflag = if receiptdate <= current {
                    if rng.gen_bool(0.5) {
                        'R'
                    } else {
                        'A'
                    }
                } else {
                    'N'
                };
                let linestatus = if shipdate > current { 'O' } else { 'F' };
                if linestatus == 'O' {
                    all_f = false;
                } else {
                    all_o = false;
                }
                total += extended;
                lines.push(Lineitem {
                    l_orderkey: k,
                    l_partkey: partkey,
                    l_suppkey: (partkey % n_supp) + 1,
                    l_linenumber: ln,
                    l_quantity: quantity,
                    l_extendedprice: extended,
                    l_discount: rng.gen_range(0..=10),
                    l_tax: rng.gen_range(0..=8),
                    l_returnflag: returnflag,
                    l_linestatus: linestatus,
                    l_shipdate: shipdate,
                    l_commitdate: orderdate.plus_days(rng.gen_range(30..=90)),
                    l_receiptdate: receiptdate,
                    l_shipinstruct: text::INSTRUCTIONS[rng.gen_range(0..text::INSTRUCTIONS.len())]
                        .to_string(),
                    l_shipmode: text::MODES[rng.gen_range(0..text::MODES.len())].to_string(),
                    l_comment: text::comment(&mut rng, 3),
                });
            }

            orders.push(Order {
                o_orderkey: k,
                o_custkey: custkey,
                o_orderstatus: if all_f {
                    'F'
                } else if all_o {
                    'O'
                } else {
                    'P'
                },
                o_totalprice: total,
                o_orderdate: orderdate,
                o_orderpriority: text::PRIORITIES[rng.gen_range(0..text::PRIORITIES.len())]
                    .to_string(),
                o_clerk: format!("Clerk#{:09}", rng.gen_range(1..=scaled(1_000, self.scale))),
                o_shippriority: 0,
                o_comment: text::comment(&mut rng, 6),
            });
        }
        (orders, lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> TpchDb {
        TpchGenerator::new(0.002).generate()
    }

    #[test]
    fn cardinalities_scale() {
        let db = small_db();
        assert_eq!(db.region.len(), 5);
        assert_eq!(db.nation.len(), 25);
        assert_eq!(db.supplier.len(), 20);
        assert_eq!(db.customer.len(), 300);
        assert_eq!(db.part.len(), 400);
        assert_eq!(db.partsupp.len(), 1600);
        assert_eq!(db.orders.len(), 3000);
        // 1..=7 lines per order, mean 4.
        let per_order = db.lineitem.len() as f64 / db.orders.len() as f64;
        assert!((3.5..4.5).contains(&per_order), "lines/order {per_order}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = TpchGenerator::with_seed(0.001, 42).generate();
        let b = TpchGenerator::with_seed(0.001, 42).generate();
        assert_eq!(a.lineitem, b.lineitem);
        assert_eq!(a.orders, b.orders);
        assert_eq!(a.customer, b.customer);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TpchGenerator::with_seed(0.001, 1).generate();
        let b = TpchGenerator::with_seed(0.001, 2).generate();
        assert_ne!(a.lineitem, b.lineitem);
    }

    #[test]
    fn foreign_keys_valid() {
        let db = small_db();
        let n_cust = db.customer.len() as i64;
        let n_supp = db.supplier.len() as i64;
        let n_part = db.part.len() as i64;
        for o in &db.orders {
            assert!((1..=n_cust).contains(&o.o_custkey));
        }
        for l in &db.lineitem {
            assert!((1..=db.orders.len() as i64).contains(&l.l_orderkey));
            assert!((1..=n_part).contains(&l.l_partkey));
            assert!((1..=n_supp).contains(&l.l_suppkey));
        }
        for s in &db.supplier {
            assert!((0..25).contains(&s.s_nationkey));
        }
        for ps in &db.partsupp {
            assert!((1..=n_supp).contains(&ps.ps_suppkey));
            assert!((1..=n_part).contains(&ps.ps_partkey));
        }
    }

    #[test]
    fn quantity_is_uniform_1_to_50() {
        // The QED workload depends on l_quantity being uniform over 50
        // values (2 % selectivity each, paper §4).
        let db = TpchGenerator::new(0.01).generate();
        let mut counts = [0usize; 51];
        for l in &db.lineitem {
            assert!((1..=50).contains(&l.l_quantity));
            counts[l.l_quantity as usize] += 1;
        }
        let expect = db.lineitem.len() as f64 / 50.0;
        for (q, &count) in counts.iter().enumerate().skip(1) {
            let dev = (count as f64 - expect).abs() / expect;
            assert!(dev < 0.35, "quantity {q}: {count} vs {expect}");
        }
    }

    #[test]
    fn order_dates_leave_ship_window() {
        let db = small_db();
        let end = dates::end_date();
        for l in &db.lineitem {
            assert!(l.l_shipdate > db.orders[(l.l_orderkey - 1) as usize].o_orderdate);
            assert!(l.l_receiptdate > l.l_shipdate);
            assert!(l.l_receiptdate <= end, "receipt {}", l.l_receiptdate);
        }
    }

    #[test]
    fn totalprice_is_sum_of_extended() {
        let db = small_db();
        let mut sums = vec![0i64; db.orders.len() + 1];
        for l in &db.lineitem {
            sums[l.l_orderkey as usize] += l.l_extendedprice;
        }
        for o in &db.orders {
            assert_eq!(o.o_totalprice, sums[o.o_orderkey as usize]);
        }
    }

    #[test]
    fn partsupp_suppliers_distinct_per_part() {
        let db = small_db();
        for chunk in db.partsupp.chunks(4) {
            let mut keys: Vec<i64> = chunk.iter().map(|ps| ps.ps_suppkey).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(
                keys.len(),
                4,
                "part {} suppliers collide",
                chunk[0].ps_partkey
            );
        }
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        let _ = TpchGenerator::new(0.0);
    }
}
