//! Text pools for the generator: the spec-fixed region and nation
//! names (with their region assignments) and small word pools for
//! synthetic fields (dbgen's grammar-generated comments are replaced by
//! short word-pool phrases — the paper's experiments never read comment
//! contents, only their width matters for scan volume).

use rand::Rng;

/// The five TPC-H regions, in key order.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nations as `(name, region_key)`, in nation-key order
/// (per the TPC-H specification's fixed nation table).
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("VIETNAM", 2),
    ("CHINA", 2),
];

/// Market segments (customer.c_mktsegment domain).
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// Order priorities (orders.o_orderpriority domain).
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship instructions (lineitem.l_shipinstruct domain).
pub const INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Ship modes (lineitem.l_shipmode domain).
pub const MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Part type components (p_type = "syllable1 syllable2 syllable3").
pub const TYPE_SYLLABLE_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Second part-type syllable.
pub const TYPE_SYLLABLE_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Third part-type syllable.
pub const TYPE_SYLLABLE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Container size words.
pub const CONTAINER_1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
/// Container kind words.
pub const CONTAINER_2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Part-name colour pool (p_name concatenates five of these in dbgen;
/// we use two to keep rows compact — width, not content, is what the
/// experiments exercise).
pub const COLORS: [&str; 20] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
];

/// Word pool for synthetic comments.
pub const COMMENT_WORDS: [&str; 24] = [
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "ironic",
    "final",
    "pending",
    "regular",
    "express",
    "special",
    "bold",
    "even",
    "silent",
    "unusual",
    "daring",
    "deposits",
    "requests",
    "packages",
    "accounts",
    "instructions",
    "theodolites",
    "foxes",
    "platelets",
];

/// A short synthetic comment of `words` words.
pub fn comment<R: Rng>(rng: &mut R, words: usize) -> String {
    let mut s = String::with_capacity(words * 8);
    for i in 0..words {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())]);
    }
    s
}

/// A spec-style phone number for a nation key: `CC-DDD-DDD-DDDD` where
/// the country code is `10 + nation_key`.
pub fn phone<R: Rng>(rng: &mut R, nation_key: i64) -> String {
    format!(
        "{}-{}-{}-{}",
        10 + nation_key,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

/// A synthetic street address.
pub fn address<R: Rng>(rng: &mut R) -> String {
    format!(
        "{} {} {}",
        rng.gen_range(1..9999),
        COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())],
        if rng.gen_bool(0.5) { "St" } else { "Ave" }
    )
}

/// Lookup a region key by name (case-sensitive, spec spelling).
pub fn region_key(name: &str) -> Option<i64> {
    REGIONS.iter().position(|r| *r == name).map(|i| i as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nations_reference_valid_regions() {
        for (name, rk) in NATIONS {
            assert!((0..5).contains(&rk), "nation {name} region {rk}");
        }
        assert_eq!(NATIONS.len(), 25);
    }

    #[test]
    fn every_region_has_five_nations() {
        // The spec's nation table assigns exactly 5 nations per region —
        // this uniformity is why the paper's ten Q5 variants "perform
        // the same amount of work".
        for rk in 0..5i64 {
            let n = NATIONS.iter().filter(|(_, r)| *r == rk).count();
            assert_eq!(n, 5, "region {rk} has {n} nations");
        }
    }

    #[test]
    fn region_key_lookup() {
        assert_eq!(region_key("ASIA"), Some(2));
        assert_eq!(region_key("AMERICA"), Some(1));
        assert_eq!(region_key("NARNIA"), None);
    }

    #[test]
    fn phone_embeds_country_code() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = phone(&mut rng, 12);
        assert!(p.starts_with("22-"), "{p}");
        assert_eq!(p.split('-').count(), 4);
    }

    #[test]
    fn comment_word_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = comment(&mut rng, 5);
        assert_eq!(c.split(' ').count(), 5);
    }
}
