//! The paper's workloads.
//!
//! * **PVC workload** (§3.3): ten TPC-H Q5 instances — regions `ASIA`
//!   and `AMERICA` crossed with "all five possible date ranges"
//!   (year-long windows starting 1993-01-01 … 1997-01-01). TPC-H's
//!   uniformity makes all ten perform the same amount of work with
//!   non-overlapping predicates.
//! * **QED workload** (§4): single-table selections on
//!   `lineitem.l_quantity`, one distinct value per query (2 %
//!   selectivity each), no overlap up to a batch of 50.

use crate::dates::Date;

/// Parameters of one TPC-H Q5 instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Q5Params {
    /// Region name predicate (`r_name = region`).
    pub region: String,
    /// Date-range start (inclusive): `o_orderdate >= date_from`.
    pub date_from: Date,
    /// Date-range end (exclusive): `o_orderdate < date_to` (one year later).
    pub date_to: Date,
}

impl Q5Params {
    /// Q5 over a region and the year starting `year`-01-01.
    pub fn new(region: &str, year: i32) -> Self {
        Self {
            region: region.to_string(),
            date_from: Date::year_start(year),
            date_to: Date::year_start(year + 1),
        }
    }

    /// Display label, e.g. `"Q5(ASIA, 1994)"`.
    pub fn label(&self) -> String {
        let (y, _, _) = self.date_from.to_ymd();
        format!("Q5({}, {y})", self.region)
    }
}

/// The paper's ten-query PVC workload.
pub fn q5_workload() -> Vec<Q5Params> {
    let mut out = Vec::with_capacity(10);
    for region in ["ASIA", "AMERICA"] {
        for year in 1993..=1997 {
            out.push(Q5Params::new(region, year));
        }
    }
    out
}

/// One QED selection query: `SELECT * FROM lineitem WHERE l_quantity = value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QedQuery {
    /// The quantity value selected (1..=50).
    pub quantity: i64,
}

impl QedQuery {
    /// Display label.
    pub fn label(&self) -> String {
        format!("sel(l_quantity={})", self.quantity)
    }
}

/// A QED workload of `n` queries with pairwise-distinct predicates
/// (n ≤ 50: one query per `l_quantity` value, so "there is no overlap
/// amongst the selection predicates up to a batch size of 50").
pub fn qed_workload(n: usize) -> Vec<QedQuery> {
    assert!(
        (1..=50).contains(&n),
        "QED workload size {n} out of 1..=50 (distinct l_quantity values)"
    );
    (1..=n as i64)
        .map(|quantity| QedQuery { quantity })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_q5_variants() {
        let w = q5_workload();
        assert_eq!(w.len(), 10);
        // Two regions × five years, all distinct.
        for i in 0..w.len() {
            for j in (i + 1)..w.len() {
                assert_ne!(w[i], w[j]);
            }
        }
    }

    #[test]
    fn q5_date_windows_are_one_year_and_nonoverlapping() {
        let w = q5_workload();
        for q in &w {
            let days = q.date_to.0 - q.date_from.0;
            assert!((365..=366).contains(&days), "window {days} days");
        }
        // Within a region, windows tile without overlap.
        let asia: Vec<_> = w.iter().filter(|q| q.region == "ASIA").collect();
        for pair in asia.windows(2) {
            assert_eq!(pair[0].date_to, pair[1].date_from);
        }
    }

    #[test]
    fn qed_predicates_distinct() {
        let w = qed_workload(50);
        assert_eq!(w.len(), 50);
        let mut vals: Vec<i64> = w.iter().map(|q| q.quantity).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 50);
    }

    #[test]
    #[should_panic]
    fn qed_beyond_50_rejected() {
        let _ = qed_workload(51);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Q5Params::new("ASIA", 1994).label(), "Q5(ASIA, 1994)");
        assert_eq!(QedQuery { quantity: 7 }.label(), "sel(l_quantity=7)");
    }
}
