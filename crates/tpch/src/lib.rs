//! # eco-tpch — deterministic TPC-H-shaped data and workloads
//!
//! The paper evaluates on TPC-H (§3.3: ten Q5 variants over regions
//! `ASIA`/`AMERICA` and all five date ranges; §4: 2 %-selectivity
//! single-table selections on `lineitem.l_quantity` drawn from its 50
//! uniform integer values). This crate is a from-scratch, seeded
//! `dbgen` equivalent: all eight tables with spec-shaped cardinalities,
//! distributions and key relationships, plus builders for exactly those
//! two workloads (and a few extra queries used by the extension
//! studies).
//!
//! Determinism: the same scale factor and seed always generate the same
//! database, so experiments are reproducible bit-for-bit.

pub mod dates;
pub mod gen;
pub mod rows;
pub mod text;
pub mod workload;

pub use dates::Date;
pub use gen::{TpchDb, TpchGenerator};
pub use rows::*;
pub use workload::{q5_workload, qed_workload, Q5Params, QedQuery};
