//! Calendar dates for TPC-H, stored as days since 1992-01-01.
//!
//! TPC-H's data window is [1992-01-01, 1998-12-31]; a compact day
//! offset keeps tuples small and comparisons cheap while remaining
//! convertible to and from `y-m-d` for display and predicates.

/// A date as a day offset from 1992-01-01 (the TPC-H epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Date(pub i32);

const DAYS_IN_MONTH: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// True for leap years in the TPC-H window (1992, 1996 — the Gregorian
/// century rules don't bite between 1992 and 1998, but implement them
/// anyway for correctness outside the window).
pub fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_year(year: i32) -> i32 {
    if is_leap(year) {
        366
    } else {
        365
    }
}

fn days_in_month(year: i32, month: u32) -> i32 {
    let m = DAYS_IN_MONTH[(month - 1) as usize];
    if month == 2 && is_leap(year) {
        m + 1
    } else {
        m
    }
}

impl Date {
    /// TPC-H epoch: 1992-01-01.
    pub const EPOCH_YEAR: i32 = 1992;

    /// Build a date from year/month/day. Panics on invalid components.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "bad month {month}");
        assert!(
            day >= 1 && (day as i32) <= days_in_month(year, month),
            "bad day {year}-{month}-{day}"
        );
        let mut days: i32 = 0;
        if year >= Self::EPOCH_YEAR {
            for y in Self::EPOCH_YEAR..year {
                days += days_in_year(y);
            }
        } else {
            for y in year..Self::EPOCH_YEAR {
                days -= days_in_year(y);
            }
        }
        for m in 1..month {
            days += days_in_month(year, m);
        }
        Date(days + day as i32 - 1)
    }

    /// Decompose into (year, month, day).
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let mut days = self.0;
        let mut year = Self::EPOCH_YEAR;
        while days < 0 {
            year -= 1;
            days += days_in_year(year);
        }
        while days >= days_in_year(year) {
            days -= days_in_year(year);
            year += 1;
        }
        let mut month = 1u32;
        while days >= days_in_month(year, month) {
            days -= days_in_month(year, month);
            month += 1;
        }
        (year, month, days as u32 + 1)
    }

    /// Add a number of days (may be negative).
    pub fn plus_days(self, d: i32) -> Self {
        Date(self.0 + d)
    }

    /// First day of the given year.
    pub fn year_start(year: i32) -> Self {
        Self::from_ymd(year, 1, 1)
    }

    /// `self` formatted as `YYYY-MM-DD`.
    pub fn iso(self) -> String {
        let (y, m, d) = self.to_ymd();
        format!("{y:04}-{m:02}-{d:02}")
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.iso())
    }
}

/// TPC-H data window start.
pub fn start_date() -> Date {
    Date::from_ymd(1992, 1, 1)
}

/// TPC-H data window end (inclusive).
pub fn end_date() -> Date {
    Date::from_ymd(1998, 12, 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1992, 1, 1).0, 0);
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(1992));
        assert!(is_leap(1996));
        assert!(!is_leap(1993));
        assert!(!is_leap(1900));
        assert!(is_leap(2000));
    }

    #[test]
    fn roundtrip_every_day_in_window() {
        let start = start_date().0;
        let end = end_date().0;
        for d in start..=end {
            let date = Date(d);
            let (y, m, dd) = date.to_ymd();
            assert_eq!(Date::from_ymd(y, m, dd), date);
        }
    }

    #[test]
    fn window_length() {
        // 1992..=1998 = 2 leap + 5 normal years.
        assert_eq!(end_date().0 - start_date().0 + 1, 2 * 366 + 5 * 365);
    }

    #[test]
    fn ordering_matches_calendar() {
        assert!(Date::from_ymd(1994, 1, 1) < Date::from_ymd(1995, 1, 1));
        assert!(Date::from_ymd(1994, 6, 2) > Date::from_ymd(1994, 6, 1));
    }

    #[test]
    fn iso_format() {
        assert_eq!(Date::from_ymd(1995, 3, 7).iso(), "1995-03-07");
    }

    #[test]
    fn feb_29_in_leap_year() {
        let d = Date::from_ymd(1996, 2, 29);
        assert_eq!(d.to_ymd(), (1996, 2, 29));
        assert_eq!(d.plus_days(1).to_ymd(), (1996, 3, 1));
    }

    #[test]
    #[should_panic]
    fn feb_29_in_common_year_rejected() {
        let _ = Date::from_ymd(1993, 2, 29);
    }

    #[test]
    fn dates_before_epoch() {
        let d = Date::from_ymd(1991, 12, 31);
        assert_eq!(d.0, -1);
        assert_eq!(d.to_ymd(), (1991, 12, 31));
    }
}
