//! Property tests for the SQL front-end (no panics on arbitrary input,
//! structured round-trips) and failure-injection tests for the storage
//! path (thrashing buffer pools, pathological batch shapes).

use std::sync::OnceLock;

use proptest::prelude::*;

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::query::context::ExecCtx;
use ecodb::query::exec::execute;
use ecodb::query::sql::{compile, parse_select, tokenize};
use ecodb::simhw::machine::MachineConfig;
use ecodb::storage::{load_tpch, Catalog, EngineKind};
use ecodb::tpch::TpchGenerator;

fn shared_catalog() -> &'static Catalog {
    static CAT: OnceLock<Catalog> = OnceLock::new();
    CAT.get_or_init(|| {
        let db = TpchGenerator::new(0.002).generate();
        load_tpch(&db, EngineKind::Memory, 0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lexer never panics on arbitrary input — it returns a token
    /// stream or a structured error.
    #[test]
    fn lexer_total_on_arbitrary_strings(s in ".{0,120}") {
        let _ = tokenize(&s);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_arbitrary_strings(s in ".{0,120}") {
        let _ = parse_select(&s);
    }

    /// The parser never panics on SQL-looking soup built from real
    /// keywords and symbols.
    #[test]
    fn parser_total_on_keyword_soup(words in proptest::collection::vec(
        prop_oneof![
            Just("select"), Just("from"), Just("where"), Just("group"), Just("by"),
            Just("order"), Just("limit"), Just("and"), Just("or"), Just("not"),
            Just("sum"), Just("count"), Just("("), Just(")"), Just(","), Just("*"),
            Just("="), Just("<"), Just(">="), Just("lineitem"), Just("l_quantity"),
            Just("17"), Just("'x'"), Just("date"), Just("between"), Just("in"),
        ], 0..25)
    ) {
        let sql = words.join(" ");
        let _ = parse_select(&sql);
    }

    /// Compilation against a real catalog never panics: every outcome
    /// is Ok(plan) or a structured SqlError.
    #[test]
    fn compile_total_on_keyword_soup(words in proptest::collection::vec(
        prop_oneof![
            Just("select"), Just("from"), Just("where"), Just("group"), Just("by"),
            Just("order"), Just("limit"), Just("and"), Just("sum"), Just("count"),
            Just("("), Just(")"), Just(","), Just("*"), Just("="), Just("<"),
            Just("lineitem"), Just("orders"), Just("l_quantity"), Just("l_orderkey"),
            Just("o_orderkey"), Just("5"), Just("'ASIA'"),
        ], 0..20)
    ) {
        let sql = words.join(" ");
        if let Ok(mut plan) = compile(shared_catalog(), &sql) {
            // Anything that compiles must also execute without panicking.
            let mut ctx = ExecCtx::new();
            let _ = execute(plan.as_mut(), &mut ctx);
        }
    }

    /// Selections via SQL agree with direct filtering of the generated
    /// rows for arbitrary quantity thresholds.
    #[test]
    fn sql_selection_matches_oracle(threshold in 0i64..=51) {
        let cat = shared_catalog();
        let sql = format!(
            "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < {threshold}"
        );
        let mut plan = compile(cat, &sql).expect("valid SQL");
        let mut ctx = ExecCtx::new();
        let rows = execute(plan.as_mut(), &mut ctx);
        // Independent oracle over the stored table.
        let li = cat.expect("lineitem");
        let qty = li.schema().expect_index("l_quantity");
        let ecodb::storage::TableData::Memory(heap) = &li.data else {
            panic!("memory table expected")
        };
        let want = heap
            .tuples()
            .iter()
            .filter(|t| t[qty].as_int().unwrap() < threshold)
            .count() as i64;
        prop_assert_eq!(rows[0][0].as_int(), Some(want));
    }
}

// --- failure injection -------------------------------------------------------

/// A buffer pool far smaller than the working set: queries still return
/// correct answers, just with (much) more I/O charged.
#[test]
fn thrashing_pool_preserves_correctness() {
    let db = TpchGenerator::new(0.002).generate();
    let roomy = load_tpch(&db, EngineKind::Disk, 1 << 20);
    let tiny = load_tpch(&db, EngineKind::Disk, 3); // three pages!

    // lineitem ⋈ orders spans many pages, far beyond the tiny pool.
    let sql = "SELECT o_orderstatus, COUNT(*) AS c FROM lineitem, orders \
               WHERE l_orderkey = o_orderkey GROUP BY o_orderstatus ORDER BY o_orderstatus";
    let run = |cat: &Catalog| {
        let mut plan = compile(cat, sql).unwrap();
        let mut ctx = ExecCtx::new();
        (execute(plan.as_mut(), &mut ctx), ctx.disk)
    };
    let (rows_roomy, _) = run(&roomy);
    let (rows_tiny, io_tiny) = run(&tiny);
    assert_eq!(rows_roomy, rows_tiny, "thrashing must not change answers");
    assert!(!io_tiny.is_empty());

    // And rescans under the tiny pool keep paying.
    let (rows_again, io_again) = run(&tiny);
    assert_eq!(rows_again, rows_tiny);
    assert!(io_again.total_bytes() > 0, "tiny pool cannot stay warm");
}

/// A cold tiny-pool Q5 on the commercial profile is correct and far
/// more expensive than the roomy warm case.
#[test]
fn q5_survives_pathological_pool() {
    let src = TpchGenerator::new(0.002).generate();
    let tiny = load_tpch(&src, EngineKind::Disk, 2);
    let mut plan = ecodb::query::plans::q5_plan(&tiny, &ecodb::tpch::Q5Params::new("ASIA", 1994));
    let mut ctx = ExecCtx::new();
    let rows = execute(plan.as_mut(), &mut ctx);

    let mem = load_tpch(&src, EngineKind::Memory, 0);
    let mut mem_plan =
        ecodb::query::plans::q5_plan(&mem, &ecodb::tpch::Q5Params::new("ASIA", 1994));
    let mut mem_ctx = ExecCtx::new();
    let mem_rows = execute(mem_plan.as_mut(), &mut mem_ctx);
    assert_eq!(rows, mem_rows);
    assert!(ctx.disk.total_bytes() > 0);
}

/// Degenerate QED batches: batch of 1 equals plain execution.
#[test]
fn qed_batch_of_one_is_a_noop() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.002);
    let q = ecodb::tpch::qed_workload(1);
    let (split, _) = db.trace_merged_selection(&q, true);
    let (direct, _) = db.trace_selection(&q[0]);
    assert_eq!(split.len(), 1);
    assert_eq!(split[0], direct);
}

/// An empty-result SQL query flows through the whole pricing stack.
#[test]
fn empty_results_price_cleanly() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.002);
    let run = db
        .run_sql(
            "SELECT l_orderkey FROM lineitem WHERE l_quantity = 99",
            MachineConfig::stock(),
        )
        .unwrap();
    assert!(run.rows.is_empty());
    assert!(
        run.measurement.cpu_joules > 0.0,
        "the scan still costs energy"
    );
}
