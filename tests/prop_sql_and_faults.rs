//! Property tests for the SQL front-end (no panics on arbitrary input,
//! structured round-trips), failure-injection tests for the storage
//! path (thrashing buffer pools, pathological batch shapes), and the
//! chaos suite: random fault plans × session mixes × both storage
//! profiles, with exact retry-ledger accounting.
//!
//! The vendored proptest runner derives its RNG seed from the test
//! name, so every chaos case is pinned: CI replays the exact same fault
//! plans on every run.

use std::sync::OnceLock;

use proptest::prelude::*;

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::core::ServerError;
use ecodb::query::context::ExecCtx;
use ecodb::query::exec::execute;
use ecodb::query::sql::{compile, parse_select, tokenize};
use ecodb::server::{session_workload, EcoServer, ServerConfig, SessionOutcome, Statement};
use ecodb::simhw::fault::{FaultPlan, PageFault, TornTail, WalCrash};
use ecodb::simhw::machine::MachineConfig;
use ecodb::storage::page::PAGE_SIZE;
use ecodb::storage::{load_tpch, Catalog, EngineKind, TableData};
use ecodb::tpch::TpchGenerator;

fn shared_catalog() -> &'static Catalog {
    static CAT: OnceLock<Catalog> = OnceLock::new();
    CAT.get_or_init(|| {
        let db = TpchGenerator::new(0.002).generate();
        load_tpch(&db, EngineKind::Memory, 0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lexer never panics on arbitrary input — it returns a token
    /// stream or a structured error.
    #[test]
    fn lexer_total_on_arbitrary_strings(s in ".{0,120}") {
        let _ = tokenize(&s);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_arbitrary_strings(s in ".{0,120}") {
        let _ = parse_select(&s);
    }

    /// The parser never panics on SQL-looking soup built from real
    /// keywords and symbols.
    #[test]
    fn parser_total_on_keyword_soup(words in proptest::collection::vec(
        prop_oneof![
            Just("select"), Just("from"), Just("where"), Just("group"), Just("by"),
            Just("order"), Just("limit"), Just("and"), Just("or"), Just("not"),
            Just("sum"), Just("count"), Just("("), Just(")"), Just(","), Just("*"),
            Just("="), Just("<"), Just(">="), Just("lineitem"), Just("l_quantity"),
            Just("17"), Just("'x'"), Just("date"), Just("between"), Just("in"),
        ], 0..25)
    ) {
        let sql = words.join(" ");
        let _ = parse_select(&sql);
    }

    /// Compilation against a real catalog never panics: every outcome
    /// is Ok(plan) or a structured SqlError.
    #[test]
    fn compile_total_on_keyword_soup(words in proptest::collection::vec(
        prop_oneof![
            Just("select"), Just("from"), Just("where"), Just("group"), Just("by"),
            Just("order"), Just("limit"), Just("and"), Just("sum"), Just("count"),
            Just("("), Just(")"), Just(","), Just("*"), Just("="), Just("<"),
            Just("lineitem"), Just("orders"), Just("l_quantity"), Just("l_orderkey"),
            Just("o_orderkey"), Just("5"), Just("'ASIA'"),
        ], 0..20)
    ) {
        let sql = words.join(" ");
        if let Ok(mut plan) = compile(shared_catalog(), &sql) {
            // Anything that compiles must also execute without panicking.
            let mut ctx = ExecCtx::new();
            let _ = execute(plan.as_mut(), &mut ctx);
        }
    }

    /// Selections via SQL agree with direct filtering of the generated
    /// rows for arbitrary quantity thresholds.
    #[test]
    fn sql_selection_matches_oracle(threshold in 0i64..=51) {
        let cat = shared_catalog();
        let sql = format!(
            "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < {threshold}"
        );
        let mut plan = compile(cat, &sql).expect("valid SQL");
        let mut ctx = ExecCtx::new();
        let rows = execute(plan.as_mut(), &mut ctx);
        // Independent oracle over the stored table.
        let li = cat.expect("lineitem");
        let qty = li.schema().expect_index("l_quantity");
        let ecodb::storage::TableData::Memory(heap) = &li.data else {
            panic!("memory table expected")
        };
        let want = heap
            .tuples()
            .iter()
            .filter(|t| t[qty].as_int().unwrap() < threshold)
            .count() as i64;
        prop_assert_eq!(rows[0][0].as_int(), Some(want));
    }
}

// --- failure injection -------------------------------------------------------

/// A buffer pool far smaller than the working set: queries still return
/// correct answers, just with (much) more I/O charged.
#[test]
fn thrashing_pool_preserves_correctness() {
    let db = TpchGenerator::new(0.002).generate();
    let roomy = load_tpch(&db, EngineKind::Disk, 1 << 20);
    let tiny = load_tpch(&db, EngineKind::Disk, 3); // three pages!

    // lineitem ⋈ orders spans many pages, far beyond the tiny pool.
    let sql = "SELECT o_orderstatus, COUNT(*) AS c FROM lineitem, orders \
               WHERE l_orderkey = o_orderkey GROUP BY o_orderstatus ORDER BY o_orderstatus";
    let run = |cat: &Catalog| {
        let mut plan = compile(cat, sql).unwrap();
        let mut ctx = ExecCtx::new();
        (execute(plan.as_mut(), &mut ctx), ctx.disk)
    };
    let (rows_roomy, _) = run(&roomy);
    let (rows_tiny, io_tiny) = run(&tiny);
    assert_eq!(rows_roomy, rows_tiny, "thrashing must not change answers");
    assert!(!io_tiny.is_empty());

    // And rescans under the tiny pool keep paying.
    let (rows_again, io_again) = run(&tiny);
    assert_eq!(rows_again, rows_tiny);
    assert!(io_again.total_bytes() > 0, "tiny pool cannot stay warm");
}

/// A cold tiny-pool Q5 on the commercial profile is correct and far
/// more expensive than the roomy warm case.
#[test]
fn q5_survives_pathological_pool() {
    let src = TpchGenerator::new(0.002).generate();
    let tiny = load_tpch(&src, EngineKind::Disk, 2);
    let mut plan = ecodb::query::plans::q5_plan(&tiny, &ecodb::tpch::Q5Params::new("ASIA", 1994));
    let mut ctx = ExecCtx::new();
    let rows = execute(plan.as_mut(), &mut ctx);

    let mem = load_tpch(&src, EngineKind::Memory, 0);
    let mut mem_plan =
        ecodb::query::plans::q5_plan(&mem, &ecodb::tpch::Q5Params::new("ASIA", 1994));
    let mut mem_ctx = ExecCtx::new();
    let mem_rows = execute(mem_plan.as_mut(), &mut mem_ctx);
    assert_eq!(rows, mem_rows);
    assert!(ctx.disk.total_bytes() > 0);
}

/// Degenerate QED batches: batch of 1 equals plain execution.
#[test]
fn qed_batch_of_one_is_a_noop() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.002);
    let q = ecodb::tpch::qed_workload(1);
    let (split, _) = db.trace_merged_selection(&q, true);
    let (direct, _) = db.trace_selection(&q[0]);
    assert_eq!(split.len(), 1);
    assert_eq!(split[0], direct);
}

// --- chaos: deterministic fault injection across sessions --------------------

/// Sum the faults a plan injects on the `lineitem` pages (the only
/// table the selection workload scans): expected transient retries and
/// whether any page faults permanently. Memory-engine catalogs have no
/// disk pages, so the plan is inert there (`(0, false)`).
fn lineitem_faults(db: &EcoDb, plan: FaultPlan) -> (u64, bool) {
    let li = db.catalog().expect("lineitem");
    let TableData::Disk(dt) = &li.data else {
        return (0, false);
    };
    let mut retries = 0u64;
    let mut any_permanent = false;
    for (_, fault) in plan.faults_in_table(dt.table_id(), dt.num_pages() as u64) {
        match fault {
            PageFault::Transient { failures } => retries += u64::from(failures),
            PageFault::Permanent => any_permanent = true,
            PageFault::Stall { .. } => {}
        }
    }
    (retries, any_permanent)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Chaos: random fault plans × random session mixes × both storage
    /// profiles — with write-path fault points in the mix. Every
    /// fourth session submits an `INSERT` (staged through the WAL and
    /// group-committed), and the plan may carry a [`WalCrash`] point.
    /// The server must never panic; every rejection is typed (`Io`
    /// only when the plan holds a permanent page fault, `Wal` only
    /// when a crash point is installed); and for plans whose crash
    /// never fires the read-path accounting is exact: `retry_ios`
    /// equals the injected transient-failure count and every base
    /// ledger class is bit-identical to a no-fault run of the same
    /// sessions (inserts are constant-cost, so the rerun's ledger
    /// matches even though the first run already grew `region`).
    #[test]
    fn chaos_random_fault_plans_degrade_gracefully(
        seed in 0u64..1_000_000,
        rate_ppm in 0u32..400_000,
        sessions in 4usize..20,
        threshold in 1usize..6,
        wal_kind in 0u8..8,
        wal_at in 0u64..24,
    ) {
        // Five of eight draws install a write-path crash point; the
        // rest keep the original pure read-fault chaos.
        let wal_crash = match wal_kind {
            0 => Some(WalCrash::KillAfterRecords { records: wal_at, torn: TornTail::None }),
            1 => Some(WalCrash::KillAfterRecords { records: wal_at, torn: TornTail::MidHeader }),
            2 => Some(WalCrash::KillAfterRecords { records: wal_at, torn: TornTail::MidPayload }),
            3 | 4 => Some(WalCrash::FsyncFailure { fsync: wal_at / 4 }),
            _ => None,
        };
        for profile in [EngineProfile::MemoryEngine, EngineProfile::CommercialDisk] {
            let mut db = EcoDb::tpch(profile, 0.002);
            let mut plan = FaultPlan::new(seed, rate_ppm);
            if let Some(crash) = wal_crash {
                plan = plan.with_wal_crash(crash);
            }
            db.set_fault_plan(plan);
            db.flush_cache();
            let mut requests = session_workload(sessions, 500.0, seed);
            for (i, r) in requests.iter_mut().enumerate() {
                if i % 4 == 3 {
                    let key = 1000 + i;
                    r.statement = Statement::Sql(format!(
                        "INSERT INTO region VALUES ({key}, 'C{key}', 'chaos')"
                    ));
                }
            }
            let cfg = ServerConfig::batched(2, threshold);
            // The serve loop must terminate with one typed outcome per
            // request, whatever the plan injects.
            let report = EcoServer::new(&db, cfg).serve(&requests);
            prop_assert_eq!(report.outcomes.len(), sessions);

            let (expected_retries, any_permanent) = lineitem_faults(&db, plan);
            let mut wal_rejections = 0usize;
            for o in &report.outcomes {
                if let SessionOutcome::Rejected { error, .. } = o {
                    match error {
                        ServerError::Io(_) => {
                            prop_assert!(any_permanent, "Io rejection needs a permanent fault");
                        }
                        ServerError::Wal(_) => {
                            prop_assert!(wal_crash.is_some(), "Wal rejection needs a crash point");
                            wal_rejections += 1;
                        }
                        other => {
                            return Err(TestCaseError::fail(format!(
                                "unexpected rejection class: {other}"
                            )));
                        }
                    }
                }
            }
            let wal_fired = db.wal_crashed();
            prop_assert_eq!(
                wal_fired, wal_rejections > 0,
                "a fired crash point rejects at least one writer, an unfired one rejects none"
            );
            prop_assert!(report.ledger_identity());

            // No-fault baseline over the same sessions, same pool
            // state. A fired crash point poisons the log, so recovery
            // must first restore the write path.
            db.set_fault_plan(FaultPlan::none());
            if wal_fired {
                db.recover().expect("recovery restores the write path after chaos");
            }
            db.flush_cache();
            let clean = EcoServer::new(&db, cfg).serve(&requests);
            prop_assert_eq!(clean.io_failed, 0);

            if wal_fired {
                // The crash truncated the first run mid-workload:
                // ledger comparisons against the clean rerun are
                // meaningless, but the healed server serves in full.
                prop_assert!(clean.outcomes.iter().all(|o| o.is_completed()));
                continue;
            }

            if matches!(profile, EngineProfile::MemoryEngine) {
                // Heap tables never touch the buffer pool: any fault
                // plan is inert and the ledgers agree bit for bit.
                prop_assert_eq!(report.served, sessions);
                prop_assert_eq!(&report.ledger, &clean.ledger);
                continue;
            }

            if !any_permanent {
                // Transient/stall faults always recover: full service,
                // exact retry accounting, and base classes identical to
                // the no-fault ledger.
                prop_assert_eq!(report.served, clean.served);
                prop_assert_eq!(report.ledger.disk.retry_ios, expected_retries);
                prop_assert_eq!(
                    report.ledger.disk.retry_bytes,
                    expected_retries * PAGE_SIZE as u64
                );
                let mut base = report.ledger.clone();
                base.disk.retry_ios = 0;
                base.disk.retry_bytes = 0;
                base.backoff_ns = 0;
                prop_assert_eq!(&base, &clean.ledger);
                // The per-session fork/merge round trip stays exact
                // with the v2 retry classes in play.
                prop_assert!(report.ledger_identity());
            } else {
                // Permanent faults: merged batches touching the bad
                // page fail their sessions; everything else still
                // completes and nothing is double-charged.
                prop_assert!(report.io_failed > 0);
                prop_assert_eq!(report.served + report.failed + report.shed, sessions);
                prop_assert!(report.ledger_identity());
            }
        }
    }
}

/// An empty-result SQL query flows through the whole pricing stack.
#[test]
fn empty_results_price_cleanly() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.002);
    let run = db
        .run_sql(
            "SELECT l_orderkey FROM lineitem WHERE l_quantity = 99",
            MachineConfig::stock(),
        )
        .unwrap();
    assert!(run.rows.is_empty());
    assert!(
        run.measurement.cpu_joules > 0.0,
        "the scan still costs energy"
    );
}
