//! End-to-end tests of the concurrent multi-session server: online QED
//! batching beats no-batching admission by ≥2x joules/query at 1k
//! sessions, ledgers stay bit-identical to serial replay, and admission
//! control degrades gracefully.

use ecodb::core::server::{EcoDb, EngineProfile, ServerError};
use ecodb::query::exec::ExecEngine;
use ecodb::server::{
    plan_admission, replay_serial, session_workload, AdmissionConfig, EcoServer, ServeReport,
    ServerConfig, SessionOutcome,
};

const SCALE: f64 = 0.002;
/// Saturating offered load: arrivals land faster than even the
/// unbatched server drains them, so both admission modes compare at
/// equal (over-)offered load with the machine never idle.
const RATE_QPS: f64 = 50_000.0;
const SEED: u64 = 0xEC0;

fn serve(db: &EcoDb, sessions: usize, threshold: usize) -> ServeReport {
    let requests = session_workload(sessions, RATE_QPS, SEED);
    let cfg = ServerConfig::batched(2, threshold);
    EcoServer::new(db, cfg).serve(&requests)
}

#[test]
fn online_qed_batching_halves_joules_per_query_at_1k_sessions() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE).with_engine(ExecEngine::Columnar);
    let plan = plan_admission(&db, &AdmissionConfig::default());
    let threshold = plan.threshold.max(32);

    let unbatched = serve(&db, 1000, 1);
    let batched = serve(&db, 1000, threshold);

    assert_eq!(unbatched.served, 1000);
    assert_eq!(batched.served, 1000);

    // Acceptance criterion: ≥2x joules/query at equal offered load.
    let cpu_gain = unbatched.joules_per_query() / batched.joules_per_query();
    assert!(
        cpu_gain >= 2.0,
        "CPU joules/query gain {cpu_gain:.2} < 2.0 (unbatched {}, batched {})",
        unbatched.joules_per_query(),
        batched.joules_per_query()
    );
    let wall_gain = unbatched.wall_joules_per_query() / batched.wall_joules_per_query();
    assert!(wall_gain >= 2.0, "wall joules/query gain {wall_gain:.2}");

    // Batching also lifts throughput (fewer scans, fewer round trips).
    assert!(batched.queries_per_second() > unbatched.queries_per_second());

    // The price: queueing delay. Batched responses include real
    // accumulation time; unbatched queries never wait on a batch.
    assert!(batched.avg_queue_delay_s() >= 0.0);

    // Both runs' summed ledgers are bit-identical to serial replays of
    // their own dispatch transcripts (memory engine: pool is stateless,
    // no reset needed between serve and replay).
    for report in [&unbatched, &batched] {
        assert!(report.ledger_identity());
        let replay = replay_serial(&db, &report.dispatches, 2, true);
        assert_eq!(report.ledger, replay);
    }
}

#[test]
fn every_session_gets_its_own_correct_rows_out_of_merged_batches() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE).with_engine(ExecEngine::Columnar);
    let requests = session_workload(128, RATE_QPS, SEED ^ 1);
    let report = EcoServer::new(&db, ServerConfig::batched(2, 16)).serve(&requests);
    assert_eq!(report.served, 128);
    for (r, o) in requests.iter().zip(&report.outcomes) {
        let SessionOutcome::Completed { rows, .. } = o else {
            panic!("expected completion, got {o:?}")
        };
        let ecodb::server::Statement::Selection(q) = &r.statement else {
            unreachable!()
        };
        let (want, _) = db.trace_selection(q);
        assert_eq!(rows, &want);
    }
}

#[test]
fn advisor_planned_admission_batches_and_sheds_under_overload() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE);
    let plan = plan_admission(&db, &AdmissionConfig::default());
    let cfg = ServerConfig::batched(2, 1).with_admission(&plan);
    assert_eq!(cfg.threshold, plan.threshold);
    assert_eq!(cfg.max_backlog, plan.max_backlog);

    // Overload far past the backlog cap in one burst: the cap sheds
    // the excess with a typed error; everyone else completes.
    let mut requests = session_workload(plan.max_backlog + 50, 1e9, SEED ^ 2);
    for r in &mut requests {
        r.arrival_s = 0.0;
    }
    // Threshold dispatches interleave with arrivals, so exact shed
    // counts depend on the plan; the invariants do not.
    let report = EcoServer::new(&db, cfg).serve(&requests);
    assert_eq!(report.served + report.shed, requests.len());
    assert!(report.served >= plan.max_backlog, "queued work completes");
    let shed_errors = report
        .outcomes
        .iter()
        .filter(|o| {
            matches!(
                o,
                SessionOutcome::Rejected {
                    error: ServerError::Shed { .. },
                    ..
                }
            )
        })
        .count();
    assert_eq!(shed_errors, report.shed);
}

#[test]
fn disk_profile_ledger_identity_cold_and_warm() {
    let db = EcoDb::tpch(EngineProfile::CommercialDisk, SCALE);
    let requests = session_workload(60, RATE_QPS, SEED ^ 3);
    let cfg = ServerConfig::batched(2, 8);

    // Cold: both serve and replay start from a flushed pool.
    db.flush_cache();
    let cold = EcoServer::new(&db, cfg).serve(&requests);
    assert!(cold.ledger_identity());
    db.flush_cache();
    let cold_replay = replay_serial(&db, &cold.dispatches, 2, true);
    assert_eq!(cold.ledger, cold_replay, "cold serve vs cold replay");

    // Warm: both start from an identically pre-warmed pool.
    db.flush_cache();
    db.warm_up();
    let warm = EcoServer::new(&db, cfg).serve(&requests);
    assert!(warm.ledger_identity());
    db.flush_cache();
    db.warm_up();
    let warm_replay = replay_serial(&db, &warm.dispatches, 2, true);
    assert_eq!(warm.ledger, warm_replay, "warm serve vs warm replay");

    // Cold does strictly more disk work.
    assert!(cold.ledger.disk.total_bytes() > warm.ledger.disk.total_bytes());
}

#[test]
fn open_system_pricing_charges_idle_between_sparse_arrivals() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE);
    // Sparse arrivals (10 qps): the machine idles between dispatches.
    let requests = session_workload(10, 10.0, SEED ^ 4);
    let report = EcoServer::new(&db, ServerConfig::unbatched(2)).serve(&requests);
    assert_eq!(report.served, 10);
    assert!(
        report.measurement.idle_s > 0.5,
        "sparse load must idle, got {}",
        report.measurement.idle_s
    );
    // Idle time dominates the makespan but not the energy-per-busy-
    // second: average wall power sits near the idle floor, well below
    // a busy machine's draw.
    assert!(report.measurement.makespan_s > report.measurement.busy_window_s * 10.0);
}
