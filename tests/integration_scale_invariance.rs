//! Scale-invariance: the reproduction's *ratios* (the actual targets —
//! see EXPERIMENTS.md) must not depend on the TPC-H scale factor. The
//! paper measured SF 1.0/0.125/0.5 on hardware; we run smaller scales,
//! so this property is what makes those runs representative.

use ecodb::core::pvc::PvcSweep;
use ecodb::core::qed::run_qed;
use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::simhw::machine::MachineConfig;
use ecodb::simhw::VoltageSetting;

fn pvc_ratios(scale: f64) -> Vec<(f64, f64, f64)> {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, scale);
    let (_, trace) = db.trace_q5_workload();
    let sweep = PvcSweep::paper_grid(db.machine(), &trace);
    sweep
        .points_for(VoltageSetting::Medium)
        .iter()
        .map(|p| (p.energy_ratio, p.time_ratio, p.edp_ratio))
        .collect()
}

#[test]
fn pvc_ratios_are_scale_free() {
    let small = pvc_ratios(0.002);
    let large = pvc_ratios(0.008);
    for (s, l) in small.iter().zip(&large) {
        assert!((s.0 - l.0).abs() < 0.03, "energy ratio: {s:?} vs {l:?}");
        assert!((s.1 - l.1).abs() < 0.03, "time ratio: {s:?} vs {l:?}");
        assert!((s.2 - l.2).abs() < 0.05, "EDP ratio: {s:?} vs {l:?}");
    }
}

#[test]
fn qed_ratios_are_scale_free() {
    let run = |scale: f64| {
        let db = EcoDb::tpch(EngineProfile::MemoryEngine, scale);
        run_qed(&db, 40, MachineConfig::stock(), true)
    };
    let small = run(0.002);
    let large = run(0.008);
    assert!(
        (small.energy_ratio - large.energy_ratio).abs() < 0.04,
        "{} vs {}",
        small.energy_ratio,
        large.energy_ratio
    );
    assert!(
        (small.response_ratio - large.response_ratio).abs() < 0.06,
        "{} vs {}",
        small.response_ratio,
        large.response_ratio
    );
}

#[test]
fn absolute_costs_scale_linearly() {
    let measure = |scale: f64| {
        let db = EcoDb::tpch(EngineProfile::MemoryEngine, scale);
        db.run_q5_workload(MachineConfig::stock()).measurement
    };
    let a = measure(0.002);
    let b = measure(0.008);
    let time_factor = b.elapsed_s / a.elapsed_s;
    let energy_factor = b.cpu_joules / a.cpu_joules;
    // 4× the data ⇒ roughly 4× the work (generator rounding and
    // per-query fixed costs allow slack).
    assert!(
        (2.8..5.2).contains(&time_factor),
        "time factor {time_factor}"
    );
    assert!(
        (2.8..5.2).contains(&energy_factor),
        "energy factor {energy_factor}"
    );
}
