//! Cross-crate integration: the QED pipeline — correctness, trade-off
//! shapes, interaction with PVC, and the workload manager.

use ecodb::core::qed::{run_qed, WorkloadManager};
use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::simhw::{CpuConfig, MachineConfig, VoltageSetting};
use ecodb::tpch::qed_workload;

const SCALE: f64 = 0.004;

fn db() -> EcoDb {
    EcoDb::tpch(EngineProfile::MemoryEngine, SCALE)
}

#[test]
fn fig6_shape_full() {
    let db = db();
    let outcomes: Vec<_> = [35, 40, 45, 50]
        .iter()
        .map(|&k| run_qed(&db, k, MachineConfig::stock(), true))
        .collect();
    for o in &outcomes {
        assert!(o.results_match, "batch {}", o.batch_size);
        assert!((0.4..0.8).contains(&o.energy_ratio), "E {}", o.energy_ratio);
        assert!(o.response_ratio > 1.0, "resp {}", o.response_ratio);
        assert!(o.edp_ratio < 1.0, "EDP {}", o.edp_ratio);
    }
    // Trends: energy and EDP improve with batch size; response ratio
    // declines (Fig 6's left-upward march toward the largest batch).
    for w in outcomes.windows(2) {
        assert!(w[1].energy_ratio < w[0].energy_ratio);
        assert!(w[1].edp_ratio < w[0].edp_ratio);
        assert!(w[1].response_ratio < w[0].response_ratio);
    }
}

#[test]
fn qed_composes_with_pvc() {
    // Extension: run the QED batch *under* a PVC setting — the savings
    // multiply (the paper treats the mechanisms as complementary).
    let db = db();
    let stock = run_qed(&db, 40, MachineConfig::stock(), true);
    let pvc = run_qed(
        &db,
        40,
        MachineConfig::with_cpu(CpuConfig::underclocked(0.05, VoltageSetting::Medium)),
        true,
    );
    assert!(pvc.results_match);
    assert!(
        pvc.qed.cpu_joules < stock.qed.cpu_joules,
        "PVC should reduce QED's absolute joules further"
    );
    assert!(pvc.qed.avg_response_s > stock.qed.avg_response_s);
}

#[test]
fn small_batches_also_work() {
    let db = db();
    for k in [2, 5, 10] {
        let o = run_qed(&db, k, MachineConfig::stock(), true);
        assert!(o.results_match, "batch {k}");
        assert!(o.energy_ratio < 1.0, "batch {k} saves energy");
    }
}

#[test]
fn exhaustive_evaluation_still_correct_but_costlier() {
    let db = db();
    let sc = run_qed(&db, 30, MachineConfig::stock(), true);
    let ex = run_qed(&db, 30, MachineConfig::stock(), false);
    assert!(sc.results_match && ex.results_match);
    assert!(
        ex.qed.cpu_joules > sc.qed.cpu_joules,
        "exhaustive disjunction must cost more"
    );
}

#[test]
fn workload_manager_feeds_qed_end_to_end() {
    let db = db();
    let mut wm = WorkloadManager::new(8);
    let mut batches = Vec::new();
    for q in qed_workload(24) {
        if let Some(b) = wm.submit(q) {
            batches.push(b);
        }
    }
    assert_eq!(batches.len(), 3);
    for batch in &batches {
        let (split, _) = db.trace_merged_selection(batch, true);
        assert_eq!(split.len(), 8);
        let total: usize = split.iter().map(Vec::len).sum();
        assert!(total > 0, "every batch selects some rows");
    }
}

#[test]
fn per_query_energy_drops_even_though_batch_runs_longer() {
    let db = db();
    let o = run_qed(&db, 45, MachineConfig::stock(), true);
    assert!(o.qed.joules_per_query() < o.sequential.joules_per_query());
    assert!(o.qed.total_seconds < o.sequential.total_seconds);
}
