//! Integration tests for the extension subsystems: the SQL front-end,
//! the analytical QED/SLA model, energy-aware plan choice, and the
//! cluster-level scheduling simulation.

use ecodb::core::advisor::rank_plans_by_energy;
use ecodb::core::cluster::{simulate, uniform_stream, Policy, ServerPower};
use ecodb::core::qed_model::QedModel;
use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::query::plans;
use ecodb::simhw::machine::{Machine, MachineConfig};
use ecodb::simhw::{CpuConfig, VoltageSetting};
use ecodb::tpch::{q5_workload, Q5Params};

const SCALE: f64 = 0.004;

#[test]
fn all_ten_q5_variants_run_through_sql() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE);
    for params in q5_workload() {
        let sql = plans::q5_sql(&params);
        let via_sql = db.run_sql(&sql, MachineConfig::stock()).expect("compiles");
        let hand = db.run_q5(
            &params.region,
            params.date_from.to_ymd().0,
            MachineConfig::stock(),
        );
        let mut a = plans::q5_rows_to_pairs(&via_sql.rows);
        a.sort();
        let mut b = plans::q5_rows_to_pairs(&hand.rows);
        b.sort();
        assert_eq!(a, b, "{}", params.label());
    }
}

#[test]
fn sql_runs_are_priced_like_any_other_statement() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE);
    let sql = "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity <= 25";
    let stock = db.run_sql(sql, MachineConfig::stock()).unwrap();
    let eco = db
        .run_sql(
            sql,
            MachineConfig::with_cpu(CpuConfig::underclocked(0.05, VoltageSetting::Medium)),
        )
        .unwrap();
    assert_eq!(stock.rows, eco.rows);
    assert!(eco.measurement.cpu_joules < stock.measurement.cpu_joules);
    assert!(eco.measurement.elapsed_s > stock.measurement.elapsed_s);
}

#[test]
fn sql_errors_do_not_panic() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE);
    for bad in [
        "SELEC oops",
        "SELECT * FROM no_such_table",
        "SELECT ghost_column FROM lineitem",
        "SELECT * FROM lineitem WHERE",
        "SELECT n_name FROM nation, region", // cartesian
    ] {
        assert!(db.run_sql(bad, MachineConfig::stock()).is_err(), "{bad}");
    }
}

#[test]
fn analytical_model_supports_sla_reasoning() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE);
    let model = QedModel::fit(&db, 10, 40);
    // The model must reproduce the measured average-response ratio and
    // drive a deadline-based batch choice end to end.
    let deadline = model.qed_response_s(20, 20) * 1.02;
    let k = model
        .max_batch_for_deadline(50, deadline, 0.95)
        .expect("a batch fits");
    assert!(k >= 20);
    // Check: the chosen batch really meets the deadline at p95.
    let (_, frac) = model.deadline_fractions(k, deadline);
    assert!(frac >= 0.95);
}

#[test]
fn energy_aware_plan_choice_end_to_end() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE);
    let params = Q5Params::new("AMERICA", 1995);
    let ranked = rank_plans_by_energy(
        &db,
        vec![
            (
                "late-filter",
                plans::q5_plan_late_filter(db.catalog(), &params),
            ),
            ("pushdown", plans::q5_plan(db.catalog(), &params)),
        ],
        MachineConfig::stock(),
    );
    assert_eq!(ranked.len(), 2);
    assert_eq!(ranked[0].name, "pushdown");
    assert!(ranked[0].edp() < ranked[1].edp());
}

#[test]
fn cluster_consolidation_trades_latency_for_energy() {
    let power = ServerPower::from_machine(&Machine::paper_sut(), &MachineConfig::stock());
    let jobs = uniform_stream(300, 1.0, 0.08); // 8 % load
    let on = simulate(6, power, Policy::AllOnRoundRobin, &jobs);
    let packed = simulate(
        6,
        power,
        Policy::Consolidate {
            idle_timeout_s: 2.0,
            wake_latency_s: 0.4,
        },
        &jobs,
    );
    assert!(packed.energy_j < on.energy_j * 0.55);
    assert!(packed.avg_response_s >= on.avg_response_s);
    // Work conservation: both process everything.
    let total: f64 = packed.busy_s.iter().sum();
    assert!((total - 300.0 * 0.08).abs() < 1e-6);
}

#[test]
fn pvc_and_cluster_compose() {
    // Local + global techniques together: an underclocked fleet packed
    // by the consolidation policy.
    let machine = Machine::paper_sut();
    let stock_power = ServerPower::from_machine(&machine, &MachineConfig::stock());
    let pvc_power = ServerPower::from_machine(
        &machine,
        &MachineConfig::with_cpu(CpuConfig::underclocked(0.05, VoltageSetting::Medium)),
    );
    assert!(pvc_power.busy_w < stock_power.busy_w);
    let jobs = uniform_stream(200, 0.5, 0.1);
    let policy = Policy::Consolidate {
        idle_timeout_s: 2.0,
        wake_latency_s: 0.4,
    };
    let a = simulate(4, stock_power, policy, &jobs);
    let b = simulate(4, pvc_power, policy, &jobs);
    assert!(b.energy_j < a.energy_j, "{} vs {}", b.energy_j, a.energy_j);
}
