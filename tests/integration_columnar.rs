//! The columnar contract: scalar, batch and columnar execution must
//! produce **identical result rows** and **bit-identical energy
//! ledgers** — op-class counts, memory stream bytes, random accesses
//! and disk I/O — for TPC-H Q1/Q3/Q5/Q6 and the QED merged scan, on
//! both storage engines, cold and warm, serial and morsel-parallel,
//! across chunk sizes. The paper-reproduction figures are priced from
//! the ledger, so any drift here silently corrupts them.

use std::sync::OnceLock;

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::query::context::ExecCtx;
use ecodb::query::exec::{execute_columnar, execute_parallel, execute_scalar, ExecEngine};
use ecodb::query::ops::BoxedOp;
use ecodb::query::plans;
use ecodb::simhw::OpClass;
use ecodb::storage::{load_tpch, Catalog, EngineKind, Tuple};
use ecodb::tpch::{Q5Params, TpchDb, TpchGenerator};

const SCALE: f64 = 0.003;

fn source_db() -> &'static TpchDb {
    static DB: OnceLock<TpchDb> = OnceLock::new();
    DB.get_or_init(|| TpchGenerator::new(SCALE).generate())
}

fn fresh_catalog(engine: EngineKind) -> Catalog {
    // A roomy pool: cold runs charge the full read once, warm runs are
    // I/O-free — deterministically, for every execution engine alike.
    load_tpch(source_db(), engine, 1 << 20)
}

fn assert_ledgers_equal(a: &ExecCtx, b: &ExecCtx, what: &str) {
    assert_eq!(a.cpu, b.cpu, "{what}: op-class counts differ");
    assert_eq!(
        a.mem_stream_bytes, b.mem_stream_bytes,
        "{what}: memory stream bytes differ"
    );
    assert_eq!(
        a.mem_random_accesses, b.mem_random_accesses,
        "{what}: random memory accesses differ"
    );
    assert_eq!(a.disk, b.disk, "{what}: disk I/O differs");
    assert_eq!(a.pred_evals, b.pred_evals, "{what}: pred_evals differ");
}

/// Run `mk`'s plan cold then warm on a fresh catalog under the given
/// engine; return rows and ledgers for both runs.
fn run_twice(
    engine: EngineKind,
    mk: &dyn Fn(&Catalog) -> BoxedOp,
    mut ctx_of: impl FnMut() -> ExecCtx,
    exec: ExecEngine,
) -> [(Vec<Tuple>, ExecCtx); 2] {
    let catalog = fresh_catalog(engine);
    [(); 2].map(|_| {
        let mut plan = mk(&catalog);
        let mut ctx = ctx_of();
        let rows = exec.execute(plan.as_mut(), &mut ctx);
        (rows, ctx)
    })
}

fn check_query(name: &str, mk: &dyn Fn(&Catalog) -> BoxedOp) {
    for engine in [EngineKind::Memory, EngineKind::Disk] {
        // The baseline: a genuinely tuple-at-a-time pipeline.
        let scalar = run_twice(
            engine,
            mk,
            || ExecCtx::new().with_batch_size(1),
            ExecEngine::Scalar,
        );

        // Columnar execution at several chunkings, including sizes that
        // do not divide the table and the default.
        for chunk_size in [3, 257, 1024] {
            let columnar = run_twice(
                engine,
                mk,
                || ExecCtx::new().with_batch_size(chunk_size),
                ExecEngine::Columnar,
            );
            for (pass, label) in [(0, "cold"), (1, "warm")] {
                let what = format!("{name}/{engine:?}/{label}/chunk={chunk_size}");
                assert_eq!(columnar[pass].0, scalar[pass].0, "{what}: rows differ");
                assert_ledgers_equal(&columnar[pass].1, &scalar[pass].1, &what);
            }
        }

        // Sanity: the workload actually exercised the ledger.
        assert!(
            scalar[0].1.cpu.count(OpClass::TupleFetch) > 0,
            "{name}: no fetches"
        );
        if engine == EngineKind::Disk {
            assert!(
                !scalar[0].1.disk.is_empty(),
                "{name}: cold disk run charged no I/O"
            );
            assert!(
                scalar[1].1.disk.is_empty(),
                "{name}: warm disk run still paid I/O"
            );
        }
    }
}

#[test]
fn q1_columnar_scalar_identical() {
    check_query("Q1", &|cat| plans::q1_plan(cat, 90));
}

#[test]
fn q3_columnar_scalar_identical() {
    check_query("Q3", &|cat| {
        plans::q3_plan(cat, "BUILDING", ecodb::tpch::Date::from_ymd(1995, 3, 15))
    });
}

#[test]
fn q5_columnar_scalar_identical() {
    check_query("Q5", &|cat| {
        plans::q5_plan(cat, &Q5Params::new("ASIA", 1994))
    });
}

#[test]
fn q6_columnar_scalar_identical() {
    check_query("Q6", &|cat| plans::q6_plan(cat, 1994, 6, 24));
}

/// Columnar execution composes with morsel-driven parallelism: the
/// merged ledger and rows stay bit-identical to serial scalar execution
/// at every worker count, cold and warm, on both storage engines.
#[test]
fn parallel_columnar_identical_to_scalar() {
    type PlanFn = fn(&Catalog) -> BoxedOp;
    let queries: [(&str, PlanFn); 3] = [
        ("q1", |cat| plans::q1_plan(cat, 90)),
        ("q5", |cat| {
            plans::q5_plan(cat, &Q5Params::new("ASIA", 1994))
        }),
        ("q6", |cat| plans::q6_plan(cat, 1994, 6, 24)),
    ];
    for engine in [EngineKind::Memory, EngineKind::Disk] {
        for (name, mk) in queries {
            let cat = fresh_catalog(engine);
            let mut sctx = ExecCtx::new().with_batch_size(1);
            let cold_rows = execute_scalar(mk(&cat).as_mut(), &mut sctx);
            let mut wctx = ExecCtx::new().with_batch_size(1);
            let warm_rows = execute_scalar(mk(&cat).as_mut(), &mut wctx);

            for workers in [1usize, 2, 4] {
                let cat = fresh_catalog(engine);
                let mut cold_par = ExecCtx::new().with_columnar(true);
                let rows = execute_parallel(mk(&cat).as_mut(), &mut cold_par, workers);
                let what = format!("{name}/{engine:?}/cold/workers={workers}");
                assert_eq!(rows, cold_rows, "{what}: rows differ");
                assert_ledgers_equal(&cold_par, &sctx, &what);

                let mut warm_par = ExecCtx::new().with_columnar(true);
                let rows = execute_parallel(mk(&cat).as_mut(), &mut warm_par, workers);
                let what = format!("{name}/{engine:?}/warm/workers={workers}");
                assert_eq!(rows, warm_rows, "{what}: rows differ");
                assert_ledgers_equal(&warm_par, &wctx, &what);
            }
        }
    }
}

/// The QED merged scan (MultiFilter) obeys the same contract, in both
/// short-circuit and exhaustive OR mode — the disjoint fast path and
/// the fan-out path both route through the columnar selection machinery.
#[test]
fn merged_selection_columnar_identical() {
    use ecodb::query::mqo::MergedSelection;
    let queries = ecodb::tpch::qed_workload(8);
    for engine in [EngineKind::Memory, EngineKind::Disk] {
        for short_circuit in [true, false] {
            let run = |columnar: bool, chunk_size: usize| {
                let catalog = fresh_catalog(engine);
                let mut merged = MergedSelection::new(&catalog, &queries);
                let mut ctx = if short_circuit {
                    ExecCtx::new()
                } else {
                    ExecCtx::exhaustive()
                }
                .with_batch_size(chunk_size)
                .with_columnar(columnar);
                let rows = merged.run(&mut ctx);
                (rows, ctx)
            };
            let (rows_s, ctx_s) = run(false, 1);
            for chunk_size in [7, 1024] {
                let (rows_c, ctx_c) = run(true, chunk_size);
                let what = format!("QED/{engine:?}/sc={short_circuit}/chunk={chunk_size}");
                assert_eq!(rows_c, rows_s, "{what}: rows differ");
                assert_ledgers_equal(&ctx_c, &ctx_s, &what);
            }
        }
    }
}

/// A LIMIT over a streaming pipeline keeps scalar-exact stream
/// consumption under the columnar driver (the limit pulls its child
/// tuple-at-a-time in every engine).
#[test]
fn limit_over_streaming_pipeline_columnar_identical() {
    use ecodb::query::expr::{CmpOp, Expr};
    use ecodb::query::ops::{Filter, Limit, SeqScan};

    for engine in [EngineKind::Memory, EngineKind::Disk] {
        let mk = |cat: &Catalog| -> BoxedOp {
            let scan = Box::new(SeqScan::new(cat.expect("lineitem")));
            let qty = cat.expect("lineitem").schema().expect_index("l_quantity");
            let filtered = Box::new(Filter::new(
                scan,
                Expr::cmp(CmpOp::Lt, Expr::col(qty), Expr::int(10)),
            ));
            Box::new(Limit::new(filtered, 25))
        };

        let catalog = fresh_catalog(engine);
        let mut sctx = ExecCtx::new().with_batch_size(1);
        let rows_s = execute_scalar(mk(&catalog).as_mut(), &mut sctx);
        assert_eq!(rows_s.len(), 25);

        let catalog = fresh_catalog(engine);
        let mut cctx = ExecCtx::new();
        let rows_c = execute_columnar(mk(&catalog).as_mut(), &mut cctx);
        let what = format!("limit/{engine:?}/columnar");
        assert_eq!(rows_c, rows_s, "{what}: rows differ");
        assert_ledgers_equal(&cctx, &sctx, &what);
    }
}

/// The engine knob on the server facade: identical rows and identical
/// work traces (hence identical priced figures) under every engine.
#[test]
fn ecodb_engine_knob_produces_identical_traces() {
    let mk = || EcoDb::tpch(EngineProfile::MemoryEngine, 0.002);
    let batch_db = mk();
    let (rows_b, trace_b) = batch_db.trace_q1(90);
    for engine in [ExecEngine::Scalar, ExecEngine::Columnar] {
        let db = mk().with_engine(engine);
        assert_eq!(db.engine(), engine);
        let (rows, trace) = db.trace_q1(90);
        assert_eq!(rows, rows_b, "{engine:?}: rows differ");
        assert_eq!(
            trace.total_cpu(),
            trace_b.total_cpu(),
            "{engine:?}: cpu work differs"
        );
        assert_eq!(
            trace.total_mem_stream_bytes(),
            trace_b.total_mem_stream_bytes(),
            "{engine:?}: stream bytes differ"
        );
    }

    // The QED path honors the knob too.
    let queries = ecodb::tpch::qed_workload(5);
    let (split_b, qtrace_b) = batch_db.trace_merged_selection(&queries, true);
    let col_db = mk().with_engine(ExecEngine::Columnar);
    let (split_c, qtrace_c) = col_db.trace_merged_selection(&queries, true);
    assert_eq!(split_c, split_b);
    assert_eq!(qtrace_c.total_cpu(), qtrace_b.total_cpu());
}
