//! Morsel-driven parallel execution: result rows and the merged energy
//! ledger must be **bit-identical** to serial execution at every worker
//! count, on both storage engines, cold and warm — the invariant every
//! reproduction figure rests on. Plus: per-core trace splits partition
//! the total exactly, and the multi-core machine model prices them
//! sanely.

use std::sync::OnceLock;

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::query::context::ExecCtx;
use ecodb::query::exec::{execute, execute_parallel};
use ecodb::query::ops::BoxedOp;
use ecodb::query::plans;
use ecodb::simhw::machine::MachineConfig;
use ecodb::simhw::trace::CpuWork;
use ecodb::storage::{load_tpch, Catalog, EngineKind};
use ecodb::tpch::{TpchDb, TpchGenerator};

const SCALE: f64 = 0.01;

fn mem_db() -> &'static EcoDb {
    static DB: OnceLock<EcoDb> = OnceLock::new();
    DB.get_or_init(|| EcoDb::tpch(EngineProfile::MemoryEngine, SCALE))
}

fn source_db() -> &'static TpchDb {
    static DB: OnceLock<TpchDb> = OnceLock::new();
    DB.get_or_init(|| TpchGenerator::new(0.004).generate())
}

/// A roomy, reread-free pool (like `integration_vectorized.rs`): cold
/// runs charge the full read once, warm runs are I/O-free — so ledgers
/// are comparable across runs without warm-reread counter offsets.
fn fresh_catalog(engine: EngineKind) -> Catalog {
    load_tpch(source_db(), engine, 1 << 20)
}

type PlanFn = fn(&Catalog) -> BoxedOp;

fn q1(cat: &Catalog) -> BoxedOp {
    plans::q1_plan(cat, 90)
}

fn q3(cat: &Catalog) -> BoxedOp {
    plans::q3_plan(cat, "BUILDING", ecodb::tpch::Date::from_ymd(1995, 3, 15))
}

fn q5(cat: &Catalog) -> BoxedOp {
    plans::q5_plan(cat, &ecodb::tpch::Q5Params::new("ASIA", 1994))
}

fn q6(cat: &Catalog) -> BoxedOp {
    plans::q6_plan(cat, 1994, 6, 24)
}

fn selection(cat: &Catalog) -> BoxedOp {
    plans::selection_plan(cat, &ecodb::tpch::QedQuery { quantity: 17 })
}

const QUERIES: [(&str, PlanFn); 5] = [
    ("q1", q1),
    ("q3", q3),
    ("q5", q5),
    ("q6", q6),
    ("selection", selection),
];

fn assert_ledgers_equal(name: &str, workers: usize, par: &ExecCtx, ser: &ExecCtx) {
    assert_eq!(par.cpu, ser.cpu, "{name} workers={workers}: op counts");
    assert_eq!(
        par.mem_stream_bytes, ser.mem_stream_bytes,
        "{name} workers={workers}: stream bytes"
    );
    assert_eq!(
        par.mem_random_accesses, ser.mem_random_accesses,
        "{name} workers={workers}: random accesses"
    );
    assert_eq!(par.disk, ser.disk, "{name} workers={workers}: disk I/O");
    assert_eq!(
        par.pred_evals, ser.pred_evals,
        "{name} workers={workers}: pred evals"
    );
}

#[test]
fn parallel_ledger_bit_identical_memory_engine() {
    let cat = fresh_catalog(EngineKind::Memory);
    for (name, plan_fn) in QUERIES {
        let mut serial_ctx = ExecCtx::new();
        let serial_rows = execute(plan_fn(&cat).as_mut(), &mut serial_ctx);
        for workers in [1usize, 2, 3, 4, 8] {
            let mut ctx = ExecCtx::new();
            let rows = execute_parallel(plan_fn(&cat).as_mut(), &mut ctx, workers);
            assert_eq!(rows, serial_rows, "{name} workers={workers}: rows");
            assert_ledgers_equal(name, workers, &ctx, &serial_ctx);
        }
    }
}

#[test]
fn parallel_ledger_bit_identical_across_morsel_sizes() {
    let cat = fresh_catalog(EngineKind::Memory);
    let mut serial_ctx = ExecCtx::new();
    let serial_rows = execute(q6(&cat).as_mut(), &mut serial_ctx);
    for morsel_rows in [64usize, 1000, 4096, 1 << 20] {
        let mut ctx = ExecCtx::new().with_morsel_rows(morsel_rows);
        let rows = execute_parallel(q6(&cat).as_mut(), &mut ctx, 4);
        assert_eq!(rows, serial_rows, "morsel_rows={morsel_rows}");
        assert_ledgers_equal("q6", 4, &ctx, &serial_ctx);
    }
}

#[test]
fn parallel_ledger_bit_identical_disk_engine_cold_and_warm() {
    for (name, plan_fn) in QUERIES {
        // Serial cold + warm on a fresh pool.
        let cat = fresh_catalog(EngineKind::Disk);
        let mut cold_serial = ExecCtx::new();
        let cold_rows = execute(plan_fn(&cat).as_mut(), &mut cold_serial);
        let mut warm_serial = ExecCtx::new();
        let warm_rows = execute(plan_fn(&cat).as_mut(), &mut warm_serial);
        assert_eq!(cold_rows, warm_rows);
        assert!(!cold_serial.disk.is_empty(), "{name}: cold serial hit disk");
        assert!(warm_serial.disk.is_empty(), "{name}: warm serial I/O-free");

        for workers in [2usize, 4] {
            // Parallel cold + warm on its own fresh pool.
            let cat = fresh_catalog(EngineKind::Disk);
            let mut cold_par = ExecCtx::new();
            let rows = execute_parallel(plan_fn(&cat).as_mut(), &mut cold_par, workers);
            assert_eq!(rows, cold_rows, "{name} cold workers={workers}");
            assert_ledgers_equal(&format!("{name} cold"), workers, &cold_par, &cold_serial);

            let mut warm_par = ExecCtx::new();
            let rows = execute_parallel(plan_fn(&cat).as_mut(), &mut warm_par, workers);
            assert_eq!(rows, warm_rows, "{name} warm workers={workers}");
            assert_ledgers_equal(&format!("{name} warm"), workers, &warm_par, &warm_serial);
        }
    }
}

#[test]
fn core_traces_partition_the_serial_trace_exactly() {
    let db = mem_db();
    let (serial_rows, serial_trace) = db.trace_q5_workload();
    for workers in [1usize, 2, 4, 8] {
        let (rows, core_traces) = db.trace_q5_workload_cores(workers);
        assert_eq!(rows, serial_rows, "workers={workers}");
        assert_eq!(core_traces.len(), workers);
        let mut merged = CpuWork::new();
        let mut stream = 0u64;
        let mut random = 0u64;
        for t in &core_traces {
            merged.merge(&t.total_cpu());
            stream += t.total_mem_stream_bytes();
            random += t
                .phases()
                .iter()
                .map(|p| p.mem_random_accesses)
                .sum::<u64>();
        }
        assert_eq!(merged, serial_trace.total_cpu(), "workers={workers}: cpu");
        assert_eq!(
            stream,
            serial_trace.total_mem_stream_bytes(),
            "workers={workers}: bytes"
        );
        assert_eq!(
            random,
            serial_trace
                .phases()
                .iter()
                .map(|p| p.mem_random_accesses)
                .sum::<u64>(),
            "workers={workers}: random"
        );
        // Repeatability: static morsel assignment makes the per-core
        // split itself deterministic, not just the merged totals.
        let (_, again) = db.trace_q5_workload_cores(workers);
        for (a, b) in core_traces.iter().zip(&again) {
            assert_eq!(
                a.total_cpu(),
                b.total_cpu(),
                "workers={workers}: stable split"
            );
        }
    }
}

#[test]
fn multicore_pricing_is_sane_and_faster_with_more_cores() {
    let db = mem_db();
    let serial = db.run_q5_workload(MachineConfig::stock());
    let mut prev_elapsed = f64::INFINITY;
    for workers in [1usize, 2, 4, 8] {
        let run = db.run_q5_workload_cores(workers, MachineConfig::stock());
        assert_eq!(run.rows, serial.rows, "workers={workers}");
        let m = &run.measurement;
        assert!(m.elapsed_s > 0.0 && m.cpu_joules > 0.0 && m.wall_joules > m.cpu_joules);
        assert!(
            m.elapsed_s <= prev_elapsed * 1.0001,
            "workers={workers}: more cores never cost simulated makespan"
        );
        prev_elapsed = m.elapsed_s;
        if workers == 1 {
            // One core reproduces the single-core pricing closely (the
            // only difference is the per-core phase labeling).
            assert!((m.elapsed_s - serial.measurement.elapsed_s).abs() < 1e-9);
            assert!(
                (m.cpu_joules - serial.measurement.cpu_joules).abs()
                    < 1e-6 * serial.measurement.cpu_joules
            );
        }
        if workers == 4 {
            let speedup = serial.measurement.elapsed_s / m.elapsed_s;
            assert!(speedup > 2.0, "4 simulated cores: {speedup}x");
        }
    }
}

#[test]
fn limit_over_streaming_pipeline_keeps_scalar_exact_consumption() {
    // A Limit directly over a scan→filter pipeline: parallel execution
    // must consume (and charge) exactly as much of the stream as serial.
    use ecodb::query::expr::{CmpOp, Expr};
    use ecodb::query::ops::{Filter, Limit, SeqScan};
    let db = mem_db();
    let table = db.catalog().expect("lineitem");
    let qty = table.schema().expect_index("l_quantity");
    let mk = || -> BoxedOp {
        let scan = Box::new(SeqScan::new(std::sync::Arc::clone(&table)));
        let filt = Box::new(Filter::new(
            scan,
            Expr::cmp(CmpOp::Ge, Expr::col(qty), Expr::int(10)),
        ));
        Box::new(Limit::new(filt, 25))
    };
    let mut serial_ctx = ExecCtx::new();
    let serial_rows = execute(mk().as_mut(), &mut serial_ctx);
    assert_eq!(serial_rows.len(), 25);
    for workers in [2usize, 8] {
        let mut ctx = ExecCtx::new();
        let rows = execute_parallel(mk().as_mut(), &mut ctx, workers);
        assert_eq!(rows, serial_rows);
        assert_ledgers_equal("limit-pipeline", workers, &ctx, &serial_ctx);
    }
}

#[test]
fn exchange_and_gather_merge_compose_into_plans() {
    use ecodb::query::ops::{Exchange, GatherMerge, Sort, SortKey};
    let db = mem_db();

    // Exchange over the Q6 filter pipeline, Sort over a GatherMerge.
    let table = db.catalog().expect("lineitem");
    let qty = table.schema().expect_index("l_quantity");
    let mk_filtered = || -> BoxedOp {
        use ecodb::query::expr::{CmpOp, Expr};
        use ecodb::query::ops::{Filter, SeqScan};
        let scan = Box::new(SeqScan::new(std::sync::Arc::clone(&table)));
        Box::new(Filter::new(
            scan,
            Expr::cmp(CmpOp::Eq, Expr::col(qty), Expr::int(17)),
        ))
    };

    let mut serial_ctx = ExecCtx::new();
    let mut serial_plan = Sort::new(mk_filtered(), vec![SortKey::asc(0)]);
    let serial_rows = execute(&mut serial_plan, &mut serial_ctx);

    for workers in [2usize, 4] {
        let mut ctx = ExecCtx::new().with_workers(workers);
        let gathered = Box::new(GatherMerge::new(mk_filtered())) as BoxedOp;
        let mut plan = Sort::new(gathered, vec![SortKey::asc(0)]);
        let rows = execute(&mut plan, &mut ctx);
        assert_eq!(rows, serial_rows, "workers={workers}");
        assert_ledgers_equal("sort-over-gather", workers, &ctx, &serial_ctx);

        let mut ctx2 = ExecCtx::new().with_workers(workers);
        let mut ex = Exchange::new(mk_filtered());
        let ex_rows = execute(&mut ex, &mut ctx2);
        assert_eq!(ex_rows.len(), serial_rows.len());
    }
}
