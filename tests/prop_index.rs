//! Property tests for B-tree secondary indexes (ledger schema v4).
//!
//! Three invariants, checked over random tables × key distributions ×
//! point/range probes:
//!
//! 1. **Same rows**: an [`IxScan`] point/range probe returns rows
//!    bit-identical to the `Filter`-over-`SeqScan` plan — including
//!    order, since sorted row ids make the index path emit in table
//!    order.
//! 2. **Index-free ledgers untouched**: creating an index leaves the
//!    scan plan's full energy ledger bit-identical, with every v4
//!    class (index I/O, `NodeSearch`) zero — pre-v4 figures are
//!    reproduced byte for byte.
//! 3. **Probes price as index I/O**: a cold probe charges
//!    `index_ios`/`index_bytes` and `NodeSearch`, and never charges
//!    sequential or plain-random disk traffic.

use proptest::prelude::*;

use ecodb::query::context::ExecCtx;
use ecodb::query::exec::execute_scalar;
use ecodb::query::expr::{CmpOp, Expr};
use ecodb::query::ops::{BoxedOp, Filter, IxBound, IxScan, SeqScan};
use ecodb::simhw::trace::OpClass;
use ecodb::storage::{Catalog, ColumnType, Schema, Tuple, Value};

fn table_schema() -> Schema {
    Schema::new(&[("k", ColumnType::Int), ("p", ColumnType::Str)])
}

/// Deterministic pseudo-random rows: an int key drawn from `span`
/// distinct values (plus a slow drift every `run` rows, so keys come
/// duplicated, clustered and scattered) and a wide string payload.
fn make_tuples(n: usize, span: i64, run: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            let mix = (i as u64).wrapping_mul(0x9e37_79b9).rotate_left(13);
            vec![
                Value::Int((mix as i64).rem_euclid(span) + (i / run) as i64),
                Value::str(format!("payload-{i}-{mix}")),
            ]
        })
        .collect()
}

fn load(tuples: &[Tuple]) -> Catalog {
    let mut cat = Catalog::new(1 << 20);
    cat.add_disk_table("t", table_schema(), tuples);
    cat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn index_probes_match_scans_and_leave_base_ledgers_alone(
        n in 1usize..400,
        span in prop_oneof![Just(4i64), Just(50), Just(10_000)],
        run in 1usize..40,
        lo in -20i64..10_060,
        width in 0i64..60,
        point in any::<bool>(),
    ) {
        let tuples = make_tuples(n, span, run);
        let (lo, hi) = if point { (lo, lo) } else { (lo, lo + width) };

        let scan_plan = |cat: &Catalog| -> BoxedOp {
            let scan = SeqScan::new(cat.expect("t"));
            Box::new(Filter::new(
                Box::new(scan),
                Expr::And(vec![
                    Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(lo)),
                    Expr::cmp(CmpOp::Le, Expr::col(0), Expr::int(hi)),
                ]),
            ))
        };

        // Reference: a cold scan on an index-free catalog.
        let before = load(&tuples);
        let mut ctx_before = ExecCtx::new().with_batch_size(1);
        let scan_rows = execute_scalar(scan_plan(&before).as_mut(), &mut ctx_before);

        // The same catalog shape WITH an index: the scan plan's ledger
        // must not move, and every v4 class must stay zero.
        let indexed = load(&tuples);
        let entry = indexed.create_index("ix_t_k", "t", "k").expect("disk table");
        let mut ctx_after = ExecCtx::new().with_batch_size(1);
        let scan_rows_after = execute_scalar(scan_plan(&indexed).as_mut(), &mut ctx_after);
        prop_assert_eq!(&scan_rows_after, &scan_rows);
        prop_assert_eq!(&ctx_after.cpu, &ctx_before.cpu);
        prop_assert_eq!(ctx_after.mem_stream_bytes, ctx_before.mem_stream_bytes);
        prop_assert_eq!(ctx_after.mem_random_accesses, ctx_before.mem_random_accesses);
        prop_assert_eq!(ctx_after.disk, ctx_before.disk);
        prop_assert_eq!(ctx_after.disk.index_ios, 0);
        prop_assert_eq!(ctx_after.disk.index_bytes, 0);
        prop_assert_eq!(ctx_after.cpu.count(OpClass::NodeSearch), 0);

        // The probe: same rows in the same (table) order, charged as v4
        // index I/O — never as sequential or plain-random traffic.
        indexed.pool().flush();
        let mut ix = if point {
            IxScan::point(
                indexed.expect("t"),
                std::sync::Arc::clone(&entry.index),
                Value::Int(lo),
            )
        } else {
            IxScan::range(
                indexed.expect("t"),
                std::sync::Arc::clone(&entry.index),
                IxBound::Inclusive(Value::Int(lo)),
                IxBound::Inclusive(Value::Int(hi)),
            )
        };
        let mut ictx = ExecCtx::new().with_batch_size(1);
        let ix_rows = execute_scalar(&mut ix, &mut ictx);
        prop_assert_eq!(&ix_rows, &scan_rows, "index path must return the scan's rows");
        prop_assert_eq!(ictx.disk.sequential_bytes, 0, "probes never charge sequential I/O");
        prop_assert_eq!(ictx.disk.random_ios, 0, "probes ledger as index, not random, I/O");
        prop_assert!(ictx.cpu.count(OpClass::NodeSearch) > 0, "descent must bill NodeSearch");
        if !ix_rows.is_empty() {
            prop_assert!(ictx.disk.index_ios > 0, "a cold matching probe must read pages");
        }
    }
}
