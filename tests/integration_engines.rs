//! Cross-crate integration: both storage engines, all four queries,
//! answers checked against independent oracles over the generated rows.

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::query::plans;
use ecodb::simhw::MachineConfig;

const SCALE: f64 = 0.004;

#[test]
fn q5_answers_match_reference_on_both_engines() {
    let mem = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE);
    let disk = EcoDb::tpch(EngineProfile::CommercialDisk, SCALE);
    for region in ["ASIA", "AMERICA"] {
        for year in [1993, 1995, 1997] {
            let a = mem.run_q5(region, year, MachineConfig::stock());
            let b = disk.run_q5(region, year, MachineConfig::stock());
            assert_eq!(a.rows, b.rows, "{region}/{year}");
            let got = plans::q5_rows_to_pairs(&a.rows);
            let want = plans::q5_reference(mem.source(), &ecodb::tpch::Q5Params::new(region, year));
            let mut g = got.clone();
            g.sort();
            let mut w = want.clone();
            w.sort();
            assert_eq!(g, w, "{region}/{year} oracle mismatch");
        }
    }
}

#[test]
fn full_workload_is_deterministic() {
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE);
    let a = db.run_q5_workload(MachineConfig::stock());
    let b = db.run_q5_workload(MachineConfig::stock());
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.measurement.cpu_joules, b.measurement.cpu_joules);
    assert_eq!(a.measurement.elapsed_s, b.measurement.elapsed_s);
}

#[test]
fn ten_q5_variants_do_equal_work() {
    // The paper relies on TPC-H uniformity: "all ten queries in the
    // workload perform the same amount of work".
    let db = EcoDb::tpch(EngineProfile::MemoryEngine, 0.01);
    let times: Vec<f64> = ecodb::tpch::q5_workload()
        .iter()
        .map(|p| {
            let (_, trace) = db.trace_q5(p);
            db.price(&trace, MachineConfig::stock()).elapsed_s
        })
        .collect();
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    for t in &times {
        assert!(
            (t - mean).abs() / mean < 0.20,
            "variant deviates: {t} vs mean {mean}"
        );
    }
}

#[test]
fn q1_q3_q6_agree_across_engines() {
    let mem = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE);
    let disk = EcoDb::tpch(EngineProfile::CommercialDisk, SCALE);
    assert_eq!(mem.trace_q1(90).0, disk.trace_q1(90).0);
    let cut = ecodb::tpch::Date::from_ymd(1995, 3, 15);
    assert_eq!(
        mem.trace_q3("BUILDING", cut).0,
        disk.trace_q3("BUILDING", cut).0
    );
    assert_eq!(mem.trace_q6(1994, 6, 24).0, disk.trace_q6(1994, 6, 24).0);
}

#[test]
fn disk_engine_charges_io_memory_engine_does_not() {
    let mem = EcoDb::tpch(EngineProfile::MemoryEngine, SCALE);
    let disk = EcoDb::tpch(EngineProfile::CommercialDisk, SCALE);
    disk.flush_cache();
    let (_, mt) = mem.trace_q5(&ecodb::tpch::Q5Params::new("ASIA", 1994));
    let (_, dt) = disk.trace_q5(&ecodb::tpch::Q5Params::new("ASIA", 1994));
    assert!(mt.total_disk().is_empty());
    assert!(!dt.total_disk().is_empty());
}
