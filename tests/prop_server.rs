//! Property test `concurrent_ledger_identity`: for random session
//! counts, arrival orders and batch thresholds, the merged
//! multi-session ledger equals the serial ledger of the same merged
//! statements — on both engine profiles, cold and warm.

use std::sync::OnceLock;

use proptest::prelude::*;

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::server::{replay_serial, EcoServer, Request, ServerConfig, SessionId, Statement};
use ecodb::tpch::QedQuery;

fn memory_db() -> &'static EcoDb {
    static DB: OnceLock<EcoDb> = OnceLock::new();
    DB.get_or_init(|| EcoDb::tpch(EngineProfile::MemoryEngine, 0.002))
}

fn disk_db() -> &'static EcoDb {
    static DB: OnceLock<EcoDb> = OnceLock::new();
    DB.get_or_init(|| EcoDb::tpch(EngineProfile::CommercialDisk, 0.002))
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a random-but-deterministic session workload from one seed:
/// arbitrary arrival order (gaps from microseconds to tens of
/// milliseconds, with ties) and arbitrary predicates.
fn workload_from_seed(seed: u64, sessions: usize) -> Vec<Request> {
    let mut state = seed;
    let mut t = 0.0;
    (0..sessions)
        .map(|i| {
            // ~1/8 of arrivals tie with the previous one.
            if !splitmix64(&mut state).is_multiple_of(8) {
                t += (splitmix64(&mut state) % 20_000) as f64 * 1e-6;
            }
            Request {
                session: SessionId(i as u64),
                arrival_s: t,
                statement: Statement::Selection(QedQuery {
                    quantity: (splitmix64(&mut state) % 50 + 1) as i64,
                }),
            }
        })
        .collect()
}

/// Restore the buffer pool to a reproducible starting state.
fn reset(db: &EcoDb, warm: bool) {
    db.flush_cache();
    if warm {
        db.warm_up();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant: concurrent multi-session serving forks a
    /// ledger per session; merging the per-session ledgers reproduces
    /// the server's summed ledger, and the server's summed ledger is
    /// bit-identical to executing the same merged statements serially.
    #[test]
    fn concurrent_ledger_identity(
        seed in any::<u64>(),
        sessions in 1usize..=24,
        threshold in 1usize..=8,
        workers in 1usize..=3,
        on_disk_profile in any::<bool>(),
        warm in any::<bool>(),
    ) {
        let db = if on_disk_profile { disk_db() } else { memory_db() };
        let requests = workload_from_seed(seed, sessions);
        let cfg = ServerConfig::batched(workers, threshold);

        reset(db, warm);
        let report = EcoServer::new(db, cfg).serve(&requests);
        prop_assert_eq!(report.served, sessions, "every session completes");

        // Fork/merge exactness: per-session shares sum to the whole.
        prop_assert_eq!(
            report.merged_session_ledger(),
            report.ledger.clone(),
            "merged per-session ledgers != server ledger"
        );
        prop_assert_eq!(report.session_ledgers.len(), sessions);

        // Serve vs serial replay of the same merged statements, from
        // the same pool state: bit-identical.
        reset(db, warm);
        let replay = replay_serial(db, &report.dispatches, workers, true);
        prop_assert_eq!(report.ledger, replay, "serve != serial replay");
    }
}
