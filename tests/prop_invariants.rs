//! Property-based tests over core invariants, spanning crates.

use std::sync::OnceLock;

use proptest::prelude::*;

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::query::context::ExecCtx;
use ecodb::query::exec::{execute, execute_parallel};
use ecodb::query::mqo::{split_results, MergedSelection};
use ecodb::query::ops::BoxedOp;
use ecodb::query::plans::{self, selection_plan};
use ecodb::simhw::machine::{Machine, MachineConfig};
use ecodb::simhw::trace::{OpClass, Phase, WorkTrace};
use ecodb::simhw::{CpuConfig, VoltageSetting};
use ecodb::storage::page::{deserialize_tuple, serialize_tuple};
use ecodb::storage::Value;
use ecodb::tpch::{Date, QedQuery};

fn shared_db() -> &'static EcoDb {
    static DB: OnceLock<EcoDb> = OnceLock::new();
    DB.get_or_init(|| EcoDb::tpch(EngineProfile::MemoryEngine, 0.002))
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[ -~]{0,40}".prop_map(Value::str),
        any::<i32>().prop_map(Value::Date),
        any::<char>().prop_map(Value::Char),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// QED's core correctness invariant: merging an arbitrary set of
    /// distinct selection predicates and splitting the result returns
    /// exactly what the individual queries return — in order.
    #[test]
    fn qed_split_equals_sequential(quantities in proptest::collection::btree_set(1i64..=50, 1..12)) {
        let db = shared_db();
        let queries: Vec<QedQuery> =
            quantities.iter().map(|&q| QedQuery { quantity: q }).collect();
        let mut merged = MergedSelection::new(db.catalog(), &queries);
        let mut ctx = ExecCtx::new();
        let tagged = merged.run(&mut ctx);
        let split = split_results(tagged, queries.len(), &mut ctx);
        for (i, q) in queries.iter().enumerate() {
            let mut plan = selection_plan(db.catalog(), q);
            let mut sctx = ExecCtx::new();
            let individual = execute(plan.as_mut(), &mut sctx);
            prop_assert_eq!(&split[i], &individual);
        }
    }

    /// The morsel-parallel executor is a pure throughput knob: for any
    /// plan, worker count and morsel size, the result rows and the
    /// merged energy ledger are identical to serial execution.
    #[test]
    fn parallel_matches_serial(
        plan_idx in 0usize..5,
        workers in 1usize..=8,
        morsel_rows in prop_oneof![Just(64usize), Just(333), Just(4096)],
    ) {
        let db = shared_db();
        let mk = |cat: &ecodb::storage::Catalog| -> BoxedOp {
            match plan_idx {
                0 => plans::q1_plan(cat, 90),
                1 => plans::q3_plan(cat, "BUILDING", Date::from_ymd(1995, 3, 15)),
                2 => plans::q5_plan(cat, &ecodb::tpch::Q5Params::new("ASIA", 1994)),
                3 => plans::q6_plan(cat, 1994, 6, 24),
                _ => plans::selection_plan(cat, &QedQuery { quantity: 17 }),
            }
        };
        let mut sctx = ExecCtx::new();
        let serial = execute(mk(db.catalog()).as_mut(), &mut sctx);

        let mut pctx = ExecCtx::new().with_morsel_rows(morsel_rows);
        let parallel = execute_parallel(mk(db.catalog()).as_mut(), &mut pctx, workers);

        prop_assert_eq!(parallel, serial, "rows (plan {})", plan_idx);
        prop_assert_eq!(&pctx.cpu, &sctx.cpu, "op counts (plan {})", plan_idx);
        prop_assert_eq!(pctx.mem_stream_bytes, sctx.mem_stream_bytes);
        prop_assert_eq!(pctx.mem_random_accesses, sctx.mem_random_accesses);
        prop_assert_eq!(pctx.disk, sctx.disk);
        prop_assert_eq!(pctx.pred_evals, sctx.pred_evals);
    }

    /// The columnar engine is a pure throughput knob: for any plan,
    /// storage engine, cold/warm pass, worker count and chunk size, the
    /// result rows and the full energy ledger are bit-identical to
    /// scalar execution.
    #[test]
    fn columnar_matches_scalar(
        plan_idx in 0usize..5,
        engine_idx in 0usize..2,
        workers in prop_oneof![Just(1usize), Just(2), Just(4)],
        chunk_size in prop_oneof![Just(3usize), Just(257), Just(1024)],
    ) {
        use ecodb::storage::EngineKind;
        let mk = |cat: &ecodb::storage::Catalog| -> BoxedOp {
            match plan_idx {
                0 => plans::q1_plan(cat, 90),
                1 => plans::q3_plan(cat, "BUILDING", Date::from_ymd(1995, 3, 15)),
                2 => plans::q5_plan(cat, &ecodb::tpch::Q5Params::new("ASIA", 1994)),
                3 => plans::q6_plan(cat, 1994, 6, 24),
                _ => plans::selection_plan(cat, &QedQuery { quantity: 17 }),
            }
        };
        let engine = [EngineKind::Memory, EngineKind::Disk][engine_idx];
        static SRC: OnceLock<ecodb::tpch::TpchDb> = OnceLock::new();
        let src = SRC.get_or_init(|| ecodb::tpch::TpchGenerator::new(0.002).generate());

        // Scalar baseline, cold then warm, on a fresh catalog.
        let cat = ecodb::storage::load_tpch(src, engine, 1 << 20);
        let scalar: Vec<(Vec<ecodb::storage::Tuple>, ExecCtx)> = (0..2)
            .map(|_| {
                let mut ctx = ExecCtx::new().with_batch_size(1);
                let rows =
                    ecodb::query::exec::execute_scalar(mk(&cat).as_mut(), &mut ctx);
                (rows, ctx)
            })
            .collect();

        // Columnar (possibly parallel), cold then warm, on its own pool.
        let cat = ecodb::storage::load_tpch(src, engine, 1 << 20);
        for (pass, (scalar_rows, scalar_ctx)) in scalar.iter().enumerate() {
            let mut ctx = ExecCtx::new()
                .with_batch_size(chunk_size)
                .with_columnar(true);
            let rows = execute_parallel(mk(&cat).as_mut(), &mut ctx, workers);
            let what = format!(
                "plan {plan_idx} {engine:?} pass {pass} workers {workers} chunk {chunk_size}"
            );
            prop_assert_eq!(&rows, scalar_rows, "rows: {}", what);
            prop_assert_eq!(&ctx.cpu, &scalar_ctx.cpu, "op counts: {}", what);
            prop_assert_eq!(ctx.mem_stream_bytes, scalar_ctx.mem_stream_bytes);
            prop_assert_eq!(ctx.mem_random_accesses, scalar_ctx.mem_random_accesses);
            prop_assert_eq!(ctx.disk, scalar_ctx.disk, "disk: {}", what);
            prop_assert_eq!(ctx.pred_evals, scalar_ctx.pred_evals);
        }
    }

    /// Tuple serialization round-trips arbitrary values.
    #[test]
    fn page_serialization_roundtrips(tuple in proptest::collection::vec(arb_value(), 0..12)) {
        prop_assert_eq!(deserialize_tuple(&serialize_tuple(&tuple)), tuple);
    }

    /// Dates round-trip through y/m/d decomposition across the valid range.
    #[test]
    fn date_roundtrip(offset in -3000i32..5000) {
        let d = Date(offset);
        let (y, m, dd) = d.to_ymd();
        prop_assert_eq!(Date::from_ymd(y, m, dd), d);
    }

    /// Energy and time are additive over trace concatenation at stock
    /// settings (no droop coupling), and always non-negative.
    #[test]
    fn measurement_additivity(
        ops_a in 1u64..2_000_000,
        ops_b in 1u64..2_000_000,
        mem_a in 0u64..(64 << 20),
        gap_ms in 0u64..50,
    ) {
        let machine = Machine::paper_sut();
        let cfg = MachineConfig::stock();
        let mk = |ops: u64, mem: u64, gap: u64| {
            let mut t = WorkTrace::new();
            let mut p = Phase::execute("p");
            p.cpu.add(OpClass::PredEval, ops);
            p.mem_stream_bytes = mem;
            t.push(p);
            if gap > 0 {
                t.push(Phase::client_gap(gap * 1_000_000));
            }
            t
        };
        let a = mk(ops_a, mem_a, gap_ms);
        let b = mk(ops_b, 0, 0);
        let mut ab = a.clone();
        ab.extend(b.clone());
        let ma = machine.measure(&a, &cfg);
        let mb = machine.measure(&b, &cfg);
        let mab = machine.measure(&ab, &cfg);
        prop_assert!(ma.cpu_joules >= 0.0 && mb.cpu_joules >= 0.0);
        let e = (mab.cpu_joules - (ma.cpu_joules + mb.cpu_joules)).abs();
        prop_assert!(e < 1e-6 * (1.0 + mab.cpu_joules), "energy additivity: {e}");
        let t = (mab.elapsed_s - (ma.elapsed_s + mb.elapsed_s)).abs();
        prop_assert!(t < 1e-9 * (1.0 + mab.elapsed_s), "time additivity: {t}");
    }

    /// More work never costs less time or energy (monotonicity).
    #[test]
    fn measurement_monotonicity(base in 1u64..1_000_000, extra in 1u64..1_000_000) {
        let machine = Machine::paper_sut();
        let cfg = MachineConfig::stock();
        let mk = |ops: u64| {
            let mut t = WorkTrace::new();
            let mut p = Phase::execute("p");
            p.cpu.add(OpClass::Arith, ops);
            t.push(p);
            t
        };
        let small = machine.measure(&mk(base), &cfg);
        let big = machine.measure(&mk(base + extra), &cfg);
        prop_assert!(big.cpu_joules > small.cpu_joules);
        prop_assert!(big.elapsed_s > small.elapsed_s);
    }

    /// Underclocking never speeds anything up; voltage downgrades never
    /// increase energy at equal clocks.
    #[test]
    fn pvc_direction_invariants(ops in 100_000u64..2_000_000, u in 0.0f64..0.25) {
        let machine = Machine::paper_sut();
        let mut trace = WorkTrace::new();
        let mut p = Phase::execute("p");
        p.cpu.add(OpClass::PredEval, ops);
        p.mem_stream_bytes = 4 << 20;
        trace.push(p);

        let stock = machine.measure(&trace, &MachineConfig::stock());
        let uc = machine.measure(
            &trace,
            &MachineConfig::with_cpu(CpuConfig::underclocked(u, VoltageSetting::Stock)),
        );
        prop_assert!(uc.elapsed_s >= stock.elapsed_s);

        let hi_v = machine.measure(
            &trace,
            &MachineConfig::with_cpu(CpuConfig::underclocked(u, VoltageSetting::Stock)),
        );
        let lo_v = machine.measure(
            &trace,
            &MachineConfig::with_cpu(CpuConfig::underclocked(u, VoltageSetting::Medium)),
        );
        prop_assert!(lo_v.cpu_joules <= hi_v.cpu_joules);
        prop_assert_eq!(lo_v.elapsed_s, hi_v.elapsed_s, "voltage does not change speed");
    }

    /// The EDP ratio of any measured pair is the product of its energy
    /// and time ratios (metric self-consistency).
    #[test]
    fn edp_is_product_of_ratios(ops in 100_000u64..2_000_000, u in 0.01f64..0.2) {
        let machine = Machine::paper_sut();
        let mut trace = WorkTrace::new();
        let mut p = Phase::execute("p");
        p.cpu.add(OpClass::HashProbe, ops);
        trace.push(p);
        let a = machine.measure(&trace, &MachineConfig::stock());
        let b = machine.measure(
            &trace,
            &MachineConfig::with_cpu(CpuConfig::underclocked(u, VoltageSetting::Small)),
        );
        let e = b.cpu_joules / a.cpu_joules;
        let t = b.elapsed_s / a.elapsed_s;
        let edp = b.edp() / a.edp();
        prop_assert!((edp - e * t).abs() < 1e-9);
    }
}
