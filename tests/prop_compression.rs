//! Property tests for compressed columnar execution (ledger schema v3).
//!
//! Two invariants, checked over random tables × encodings × predicates
//! × both storage engines:
//!
//! 1. **Compressed matches raw**: under [`PricingMode::Compressed`]
//!    the direct-on-compressed kernels (dictionary-id predicates, RLE
//!    run-at-a-time filters and aggregates, frame-of-reference packed
//!    scans) produce rows bit-identical to the raw columnar path.
//! 2. **Raw mode is untouched**: raw-mode rows and full energy ledgers
//!    stay bit-identical to scalar execution, and the compression
//!    machinery never charges (no `DictLookup`, no encoded mirrors) —
//!    i.e. pre-v3 ledgers are reproduced byte for byte.

use proptest::prelude::*;

use ecodb::query::context::ExecCtx;
use ecodb::query::exec::{execute_parallel, execute_scalar};
use ecodb::query::expr::{AggFunc, CmpOp, Expr};
use ecodb::query::ops::{AggSpec, BoxedOp, Filter, HashAggregate, SeqScan};
use ecodb::simhw::trace::{OpClass, PricingMode};
use ecodb::storage::{Catalog, ColumnType, HeapTable, Schema, Tuple, Value};

/// Deterministic pseudo-random table whose columns exercise every
/// encoding: a low-cardinality string (dict-str), a run- or
/// range-structured int (rle-int / pack-int / plain), a run-structured
/// date, a tiny-alphabet char (dict-char), a bool (bitmap) and a
/// high-cardinality string (plain).
fn make_tuples(n: usize, k: u64, run: usize, base: i64, span: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            let mix = (i as u64).wrapping_mul(0x9e37_79b9).rotate_left(13);
            vec![
                Value::str(format!("s{}", mix % k)),
                Value::Int(base + (mix as i64).rem_euclid(span) + (i / run) as i64),
                Value::Date((i / run) as i32),
                Value::Char((b'A' + (mix % k.min(20)) as u8) as char),
                Value::Bool(mix % 7 < 3),
                Value::str(format!("wide-{i}-{mix}")),
            ]
        })
        .collect()
}

fn table_schema() -> Schema {
    Schema::new(&[
        ("g", ColumnType::Str),
        ("v", ColumnType::Int),
        ("d", ColumnType::Date),
        ("c", ColumnType::Char),
        ("b", ColumnType::Bool),
        ("w", ColumnType::Str),
    ])
}

fn load(engine_idx: usize, tuples: &[Tuple]) -> Catalog {
    let mut cat = Catalog::new(1 << 20);
    if engine_idx == 0 {
        cat.add_memory_table("t", HeapTable::from_tuples(table_schema(), tuples.to_vec()));
    } else {
        cat.add_disk_table("t", table_schema(), tuples);
    }
    cat
}

const OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compressed_matches_raw(
        n in 1usize..300,
        k in 1u64..8,
        run in 1usize..60,
        base in -1000i64..1000,
        span in prop_oneof![Just(5i64), Just(1000), Just(i64::MAX / 4)],
        engine_idx in 0usize..2,
        op_idx in 0usize..6,
        col in 0usize..4,
        lit in 0i64..2000,
        flip in any::<bool>(),
        and_extra in any::<bool>(),
        do_agg in any::<bool>(),
        chunk in prop_oneof![Just(7usize), Just(64), Just(1024)],
        workers in 1usize..3,
    ) {
        let tuples = make_tuples(n, k, run, base, span);
        let op = OPS[op_idx];
        let literal = match col {
            0 => Expr::str(&format!("s{}", lit as u64 % (k + 1))),
            1 => Expr::int(base + lit),
            2 => Expr::date((lit % 40) as i32),
            _ => Expr::Lit(Value::Char((b'A' + (lit % 25) as u8) as char)),
        };
        let cmp = if flip {
            Expr::cmp(op, literal, Expr::col(col))
        } else {
            Expr::cmp(op, Expr::col(col), literal)
        };
        let pred = if and_extra {
            Expr::And(vec![cmp, Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(base))])
        } else {
            cmp
        };

        let mk = |cat: &Catalog| -> BoxedOp {
            let scan = SeqScan::new(cat.expect("t"));
            let filtered = Filter::new(Box::new(scan), pred.clone());
            if do_agg {
                Box::new(HashAggregate::new(
                    Box::new(filtered),
                    vec![0],
                    vec![
                        AggSpec { func: AggFunc::Sum, input: Expr::col(1), name: "s".into() },
                        AggSpec { func: AggFunc::Avg, input: Expr::col(1), name: "a".into() },
                        AggSpec { func: AggFunc::Count, input: Expr::col(1), name: "n".into() },
                    ],
                ))
            } else {
                Box::new(filtered)
            }
        };

        // Raw scalar baseline on a fresh catalog (cold pool).
        let mut sctx = ExecCtx::new().with_batch_size(1);
        let scalar = execute_scalar(mk(&load(engine_idx, &tuples)).as_mut(), &mut sctx);

        // Raw columnar: rows AND the full ledger bit-identical to
        // scalar — compression machinery must be invisible in raw mode.
        let mut rctx = ExecCtx::new().with_batch_size(chunk).with_columnar(true);
        let raw = execute_parallel(mk(&load(engine_idx, &tuples)).as_mut(), &mut rctx, workers);
        prop_assert_eq!(&raw, &scalar, "raw columnar rows differ from scalar");
        prop_assert_eq!(&rctx.cpu, &sctx.cpu, "raw-mode op counts differ from scalar");
        prop_assert_eq!(rctx.mem_stream_bytes, sctx.mem_stream_bytes);
        prop_assert_eq!(rctx.mem_random_accesses, sctx.mem_random_accesses);
        prop_assert_eq!(rctx.disk, sctx.disk);
        prop_assert_eq!(rctx.pred_evals, sctx.pred_evals);
        prop_assert_eq!(rctx.cpu.count(OpClass::DictLookup), 0, "raw mode must never dict-decode");

        // Compressed columnar: identical rows, same tuple fetches, and
        // the scan priced encoded (never wider per the +2 header floor)
        // memory traffic.
        let mut cctx = ExecCtx::new()
            .with_batch_size(chunk)
            .with_columnar(true)
            .with_pricing(PricingMode::Compressed);
        let comp = execute_parallel(mk(&load(engine_idx, &tuples)).as_mut(), &mut cctx, workers);
        prop_assert_eq!(&comp, &raw, "compressed rows differ from raw");
        prop_assert_eq!(
            cctx.cpu.count(OpClass::TupleFetch),
            rctx.cpu.count(OpClass::TupleFetch),
            "compressed path must fetch the same live rows"
        );
        prop_assert_eq!(cctx.disk, rctx.disk, "disk pages stay raw; I/O pricing unchanged");
    }
}
