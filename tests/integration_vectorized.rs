//! The vectorization contract: scalar (tuple-at-a-time) and batch
//! execution must produce **identical result rows** and **bit-identical
//! energy ledgers** — op-class counts, memory stream bytes, random
//! accesses and disk I/O — for TPC-H Q1/Q3/Q5/Q6 on both storage
//! engines, cold and warm. The paper-reproduction figures are priced
//! from the ledger, so any drift here silently corrupts them.

use std::sync::OnceLock;

use ecodb::query::context::ExecCtx;
use ecodb::query::exec::{execute, execute_scalar};
use ecodb::query::ops::BoxedOp;
use ecodb::query::plans;
use ecodb::simhw::OpClass;
use ecodb::storage::{load_tpch, Catalog, EngineKind, Tuple};
use ecodb::tpch::{Q5Params, TpchDb, TpchGenerator};

const SCALE: f64 = 0.003;

fn source_db() -> &'static TpchDb {
    static DB: OnceLock<TpchDb> = OnceLock::new();
    DB.get_or_init(|| TpchGenerator::new(SCALE).generate())
}

fn fresh_catalog(engine: EngineKind) -> Catalog {
    // A roomy pool: cold runs charge the full read once, warm runs are
    // I/O-free — deterministically, for scalar and batch alike.
    load_tpch(source_db(), engine, 1 << 20)
}

fn assert_ledgers_equal(a: &ExecCtx, b: &ExecCtx, what: &str) {
    assert_eq!(a.cpu, b.cpu, "{what}: op-class counts differ");
    assert_eq!(
        a.mem_stream_bytes, b.mem_stream_bytes,
        "{what}: memory stream bytes differ"
    );
    assert_eq!(
        a.mem_random_accesses, b.mem_random_accesses,
        "{what}: random memory accesses differ"
    );
    assert_eq!(a.disk, b.disk, "{what}: disk I/O differs");
    assert_eq!(a.pred_evals, b.pred_evals, "{what}: pred_evals differ");
}

/// Run `mk`'s plan cold then warm on a fresh catalog; return rows and
/// ledgers for both runs.
fn run_twice(
    engine: EngineKind,
    mk: &dyn Fn(&Catalog) -> BoxedOp,
    mut ctx_of: impl FnMut() -> ExecCtx,
    scalar: bool,
) -> [(Vec<Tuple>, ExecCtx); 2] {
    let catalog = fresh_catalog(engine);
    [(); 2].map(|_| {
        let mut plan = mk(&catalog);
        let mut ctx = ctx_of();
        let rows = if scalar {
            execute_scalar(plan.as_mut(), &mut ctx)
        } else {
            execute(plan.as_mut(), &mut ctx)
        };
        (rows, ctx)
    })
}

fn check_query(name: &str, mk: &dyn Fn(&Catalog) -> BoxedOp) {
    for engine in [EngineKind::Memory, EngineKind::Disk] {
        // The baseline: a genuinely tuple-at-a-time pipeline.
        let scalar = run_twice(engine, mk, || ExecCtx::new().with_batch_size(1), true);

        // Batch execution at several chunkings, including sizes that do
        // not divide the table and the default.
        for batch_size in [3, 257, 1024] {
            let batch = run_twice(
                engine,
                mk,
                || ExecCtx::new().with_batch_size(batch_size),
                false,
            );
            for (pass, label) in [(0, "cold"), (1, "warm")] {
                let what = format!("{name}/{engine:?}/{label}/batch={batch_size}");
                assert_eq!(batch[pass].0, scalar[pass].0, "{what}: rows differ");
                assert_ledgers_equal(&batch[pass].1, &scalar[pass].1, &what);
            }
        }

        // Sanity: the workload actually exercised the ledger.
        assert!(
            scalar[0].1.cpu.count(OpClass::TupleFetch) > 0,
            "{name}: no fetches"
        );
        if engine == EngineKind::Disk {
            assert!(
                !scalar[0].1.disk.is_empty(),
                "{name}: cold disk run charged no I/O"
            );
            assert!(
                scalar[1].1.disk.is_empty(),
                "{name}: warm disk run still paid I/O"
            );
        }
    }
}

#[test]
fn q1_scalar_batch_identical() {
    check_query("Q1", &|cat| plans::q1_plan(cat, 90));
}

#[test]
fn q3_scalar_batch_identical() {
    check_query("Q3", &|cat| {
        plans::q3_plan(cat, "BUILDING", ecodb::tpch::Date::from_ymd(1995, 3, 15))
    });
}

#[test]
fn q5_scalar_batch_identical() {
    check_query("Q5", &|cat| {
        plans::q5_plan(cat, &Q5Params::new("ASIA", 1994))
    });
}

#[test]
fn q6_scalar_batch_identical() {
    check_query("Q6", &|cat| plans::q6_plan(cat, 1994, 6, 24));
}

/// The QED merged scan (shared-scan MQO path) obeys the same contract.
#[test]
fn merged_selection_scalar_batch_identical() {
    use ecodb::query::mqo::MergedSelection;
    let queries = ecodb::tpch::qed_workload(8);
    for engine in [EngineKind::Memory, EngineKind::Disk] {
        let run = |batch_size: usize| {
            let catalog = fresh_catalog(engine);
            let mut merged = MergedSelection::new(&catalog, &queries);
            let mut ctx = ExecCtx::new().with_batch_size(batch_size);
            let rows = merged.run(&mut ctx);
            (rows, ctx)
        };
        let (rows_s, ctx_s) = run(1);
        for batch_size in [7, 1024] {
            let (rows_b, ctx_b) = run(batch_size);
            let what = format!("QED/{engine:?}/batch={batch_size}");
            assert_eq!(rows_b, rows_s, "{what}: rows differ");
            assert_ledgers_equal(&ctx_b, &ctx_s, &what);
        }
    }
}

/// Early termination: a LIMIT over a streaming (non-blocking) pipeline
/// must consume — and charge — exactly as much of its input in batch
/// mode as in scalar mode.
#[test]
fn limit_over_streaming_pipeline_identical() {
    use ecodb::query::expr::{CmpOp, Expr};
    use ecodb::query::ops::{Filter, Limit, SeqScan};

    for engine in [EngineKind::Memory, EngineKind::Disk] {
        let mk = |cat: &Catalog| -> BoxedOp {
            let scan = Box::new(SeqScan::new(cat.expect("lineitem")));
            let qty = cat.expect("lineitem").schema().expect_index("l_quantity");
            let filtered = Box::new(Filter::new(
                scan,
                Expr::cmp(CmpOp::Lt, Expr::col(qty), Expr::int(10)),
            ));
            Box::new(Limit::new(filtered, 25))
        };

        let catalog = fresh_catalog(engine);
        let mut sctx = ExecCtx::new().with_batch_size(1);
        let rows_s = execute_scalar(mk(&catalog).as_mut(), &mut sctx);

        for batch_size in [4, 1024] {
            let catalog = fresh_catalog(engine);
            let mut bctx = ExecCtx::new().with_batch_size(batch_size);
            let rows_b = execute(mk(&catalog).as_mut(), &mut bctx);
            let what = format!("limit/{engine:?}/batch={batch_size}");
            assert_eq!(rows_b, rows_s, "{what}: rows differ");
            assert_ledgers_equal(&bctx, &sctx, &what);
        }
        assert_eq!(rows_s.len(), 25);
        // The scan must have stopped early: fewer fetches than rows.
        let fetched = sctx.cpu.count(OpClass::TupleFetch);
        let total = source_db().lineitem.len() as u64;
        assert!(
            fetched < total,
            "limit failed to stop the scan: {fetched}/{total}"
        );
    }
}
