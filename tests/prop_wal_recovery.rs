//! Crash-replay equivalence for the mutating write path (ledger
//! schema v5).
//!
//! The property: for any random DML workload prefix × any injected
//! crash point × both storage profiles, crash recovery yields exactly
//! the committed-prefix table state, and the committed statements'
//! energy ledgers are bit-identical to a clean replay of the same
//! prefix on a fresh database. Crashes never panic; every write-path
//! failure is a typed `ServerError::Wal`.
//!
//! The vendored proptest runner derives its RNG seed from the test
//! name, so every crash case is pinned: CI replays the exact same
//! workloads and crash points on every run.

use proptest::prelude::*;

use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::core::ServerError;
use ecodb::simhw::fault::{FaultPlan, TornTail, WalCrash};

/// TPC-H scale and generator seed shared by the crashing database and
/// its clean-replay twin — equivalence only means anything when both
/// start from the same bytes.
const SCALE: f64 = 0.002;
const DB_SEED: u64 = 17;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic DML workload over `region`: inserts with fresh keys
/// (100, 101, …), single-row updates of the five base regions, and
/// deletes that may or may not find their target (an empty delete is
/// still a committed transaction — just a lone commit marker).
fn dml_workload(n: usize, seed: u64) -> Vec<String> {
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    (0..n)
        .map(|i| match splitmix64(&mut state) % 3 {
            0 => {
                let key = 100 + i;
                format!("INSERT INTO region VALUES ({key}, 'R{key}', 'crash-test')")
            }
            1 => {
                let key = splitmix64(&mut state) % 5;
                format!("UPDATE region SET r_name = 'U{i}' WHERE r_regionkey = {key}")
            }
            _ => {
                let key = 100 + splitmix64(&mut state) as usize % (i + 1);
                format!("DELETE FROM region WHERE r_regionkey = {key}")
            }
        })
        .collect()
}

/// Decode the test's integer crash parameters into a crash point.
/// `kind` 0–2 kills the log after `at` appends with each torn-tail
/// shape; anything else fails the `at`-th fsync. `at` ranges past the
/// workload's append count on purpose: a crash point that never fires
/// must leave a fully committed, fully recoverable log.
fn crash_point(kind: u8, at: u64) -> WalCrash {
    match kind {
        0 => WalCrash::KillAfterRecords {
            records: at,
            torn: TornTail::None,
        },
        1 => WalCrash::KillAfterRecords {
            records: at,
            torn: TornTail::MidHeader,
        },
        2 => WalCrash::KillAfterRecords {
            records: at,
            torn: TornTail::MidPayload,
        },
        _ => WalCrash::FsyncFailure { fsync: at / 2 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Run a random DML prefix into an injected crash, recover, and
    /// check the recovered database against a clean replay of exactly
    /// the committed prefix on a fresh twin: same table state, same
    /// per-statement ledgers bit for bit, write path fully restored.
    #[test]
    fn crash_replay_recovers_exactly_the_committed_prefix(
        seed in 0u64..1_000_000,
        n in 3usize..10,
        crash_kind in 0u8..5,
        crash_at in 0u64..16,
    ) {
        let crash = crash_point(crash_kind, crash_at);
        let stmts = dml_workload(n, seed);
        for profile in [EngineProfile::MemoryEngine, EngineProfile::CommercialDisk] {
            let mut db = EcoDb::tpch_seeded(profile, SCALE, DB_SEED);
            db.set_fault_plan(FaultPlan::none().with_wal_crash(crash));

            // Drive the workload into the crash. Acknowledged (Ok)
            // statements are the committed prefix; once the crash
            // fires, every later write fails with a typed Wal error.
            let mut committed = Vec::new();
            let mut crashed = false;
            for sql in &stmts {
                match db.try_trace_sql(sql) {
                    Ok((rows, trace)) => {
                        prop_assert!(!crashed, "a statement succeeded after the crash fired");
                        committed.push((sql.clone(), rows, trace));
                    }
                    Err(e) => {
                        prop_assert!(
                            matches!(e, ServerError::Wal(_)),
                            "write-path failure must be a typed Wal error, got: {}", e
                        );
                        crashed = true;
                    }
                }
            }
            prop_assert_eq!(crashed, db.wal_crashed());

            // Reads survive the crashed log untouched.
            let probe = "SELECT r_regionkey, r_name, r_comment FROM region";
            db.try_trace_sql(probe).expect("reads survive a crashed log");

            // Recover: the committed transactions are exactly the
            // acknowledged prefix, 1..=k in commit order.
            let report = db.recover().expect("recovery handles every injected crash image");
            let want_txns: Vec<u64> = (1..=committed.len() as u64).collect();
            prop_assert_eq!(&report.committed_txns, &want_txns);
            if let WalCrash::KillAfterRecords { torn, .. } = crash {
                // A torn tail exists iff the kill fired with a
                // fragment-leaving shape; fsync failures discard the
                // unsynced tail whole.
                prop_assert_eq!(report.torn_tail, crashed && torn != TornTail::None);
            } else {
                prop_assert!(!report.torn_tail);
            }

            // Clean replay of the committed prefix on a fresh twin:
            // every acknowledged statement's rows and energy ledger
            // must match bit for bit.
            let clean = EcoDb::tpch_seeded(profile, SCALE, DB_SEED);
            for (sql, rows, trace) in &committed {
                let (crows, ctrace) = clean.try_trace_sql(sql).expect("clean replay");
                prop_assert_eq!(rows, &crows);
                prop_assert_eq!(trace, &ctrace, "committed ledgers diverge on {}", sql);
            }

            // Table-state equivalence: the recovered database and the
            // clean replay agree row for row.
            let (rec_rows, _) = db.try_trace_sql(probe).expect("probe after recovery");
            let (clean_rows, _) = clean.try_trace_sql(probe).expect("probe on clean twin");
            prop_assert_eq!(rec_rows, clean_rows);

            // The write path is fully restored after recovery — and
            // stays equivalent to the twin.
            let post = "INSERT INTO region VALUES (9000, 'POSTCRASH', 'recovered')";
            let (rows, _) = db.try_trace_sql(post).expect("write path restored");
            prop_assert_eq!(rows[0][0].as_int(), Some(1));
            clean.try_trace_sql(post).expect("twin insert");
            let (rec_rows, _) = db.try_trace_sql(probe).expect("probe");
            let (clean_rows, _) = clean.try_trace_sql(probe).expect("probe");
            prop_assert_eq!(rec_rows, clean_rows);
        }
    }
}
