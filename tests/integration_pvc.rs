//! Cross-crate integration: the full PVC pipeline — workload, sweep,
//! figure shapes, SLA advisor — on both engine profiles.

use ecodb::core::advisor::{choose_pvc, Sla};
use ecodb::core::pvc::{PvcSweep, PAPER_VOLTAGES};
use ecodb::core::server::{EcoDb, EngineProfile};
use ecodb::simhw::VoltageSetting;

const SCALE: f64 = 0.004;

fn sweep_for(profile: EngineProfile) -> PvcSweep {
    let db = EcoDb::tpch(profile, SCALE);
    if profile == EngineProfile::CommercialDisk {
        db.warm_up();
    }
    let (_, trace) = db.trace_q5_workload();
    PvcSweep::paper_grid(db.machine(), &trace)
}

#[test]
fn edp_optimum_is_5pct_medium_on_both_profiles() {
    for profile in [EngineProfile::CommercialDisk, EngineProfile::MemoryEngine] {
        let sweep = sweep_for(profile);
        let best = sweep.best_edp().expect("winning setting exists");
        assert!(
            (best.underclock - 0.05).abs() < 1e-9,
            "{profile:?}: best at {}",
            best.underclock
        );
        assert_eq!(best.voltage, VoltageSetting::Medium, "{profile:?}");
    }
}

#[test]
fn paper_headline_numbers_within_bands() {
    // Commercial: "PVC can reduce the processor energy consumption by
    // 49% ... while increasing the response time by only 3%".
    let c = sweep_for(EngineProfile::CommercialDisk);
    let a = &c.points_for(VoltageSetting::Medium)[0];
    assert!(
        (0.35..0.70).contains(&a.energy_ratio),
        "commercial 5%/medium energy ratio {}",
        a.energy_ratio
    );
    assert!(
        (1.0..1.08).contains(&a.time_ratio),
        "commercial 5%/medium time ratio {}",
        a.time_ratio
    );

    // MySQL: "reduce energy consumption by 20% with a response time
    // penalty of only 6%".
    let m = sweep_for(EngineProfile::MemoryEngine);
    let b = &m.points_for(VoltageSetting::Medium)[0];
    assert!(
        (0.70..0.90).contains(&b.energy_ratio),
        "mysql 5%/medium energy ratio {}",
        b.energy_ratio
    );
    assert!(
        (1.02..1.12).contains(&b.time_ratio),
        "mysql 5%/medium time ratio {}",
        b.time_ratio
    );
}

#[test]
fn edp_monotone_beyond_5pct_every_voltage_every_profile() {
    for profile in [EngineProfile::CommercialDisk, EngineProfile::MemoryEngine] {
        let sweep = sweep_for(profile);
        for v in PAPER_VOLTAGES {
            let pts = sweep.points_for(v);
            for w in pts.windows(2) {
                assert!(
                    w[1].edp_ratio > w[0].edp_ratio,
                    "{profile:?}/{v:?}: EDP must worsen with deeper underclock"
                );
            }
        }
    }
}

#[test]
fn mysql_small_voltage_edp_crosses_one() {
    // Fig 3: small-voltage EDP goes from a win at 5% to a loss by 15%.
    let sweep = sweep_for(EngineProfile::MemoryEngine);
    let pts = sweep.points_for(VoltageSetting::Small);
    assert!(
        pts[0].edp_ratio < 1.0,
        "5% small should win: {}",
        pts[0].edp_ratio
    );
    assert!(
        pts[2].edp_ratio > 1.0,
        "15% small should lose: {}",
        pts[2].edp_ratio
    );
}

#[test]
fn advisor_tracks_sla_tightness() {
    let sweep = sweep_for(EngineProfile::MemoryEngine);
    let mut last_energy = f64::INFINITY;
    let mut last_uc = 1.0_f64;
    // Looser SLA should never pick a *less* energy-saving setting.
    for slack in [0.0, 7.0, 15.0, 30.0] {
        let cfg = choose_pvc(&sweep, Sla::slack_pct(slack));
        let point = sweep
            .points
            .iter()
            .find(|p| p.point.config.cpu == cfg.cpu)
            .map(|p| p.energy_ratio)
            .unwrap_or(1.0);
        assert!(point <= last_energy + 1e-9, "slack {slack}");
        last_energy = point;
        let _ = last_uc;
        last_uc = cfg.cpu.underclock;
    }
}

#[test]
fn wall_savings_smaller_than_cpu_savings() {
    // Paper §3.3: "the overall system energy consumption only drops by
    // 6%" when CPU energy drops 49%.
    let sweep = sweep_for(EngineProfile::CommercialDisk);
    for p in &sweep.points {
        assert!(p.wall_energy_ratio > p.energy_ratio);
        assert!(p.wall_energy_ratio < 1.0, "wall should still improve");
    }
}
