#!/usr/bin/env bash
# Vendored-stub drift check.
#
# The container this repo builds in has no registry access, so four
# third-party crates are vendored as API-compatible stubs under
# `vendor/`. Each stub must carry exactly the name and version pinned
# in Cargo.lock — otherwise cargo resolves a different (missing)
# version and the build fails with confusing unrelated errors. This
# script makes that skew fail fast, with a message that says what
# drifted.
#
# Usage: scripts/check_vendor_stubs.sh   (from the repo root)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
lock="$root/Cargo.lock"
fail=0

[ -f "$lock" ] || { echo "FAIL: $lock missing"; exit 1; }

shopt -s nullglob
stubs=("$root"/vendor/*/Cargo.toml)
if [ "${#stubs[@]}" -eq 0 ]; then
  echo "FAIL: no vendored stubs found under vendor/"
  exit 1
fi

for manifest in "${stubs[@]}"; do
  dir="$(basename "$(dirname "$manifest")")"
  name="$(sed -n 's/^name *= *"\(.*\)"/\1/p' "$manifest" | head -n1)"
  version="$(sed -n 's/^version *= *"\(.*\)"/\1/p' "$manifest" | head -n1)"

  if [ -z "$name" ] || [ -z "$version" ]; then
    echo "FAIL: vendor/$dir/Cargo.toml has no parseable name/version"
    fail=1
    continue
  fi
  if [ "$name" != "$dir" ]; then
    echo "FAIL: vendor/$dir contains crate \"$name\" (directory and crate name must match)"
    fail=1
  fi
  # The lock file must pin exactly this (name, version) pair.
  if ! grep -A1 "^name = \"$name\"$" "$lock" | grep -q "^version = \"$version\"$"; then
    locked="$(grep -A1 "^name = \"$name\"$" "$lock" | sed -n 's/^version = "\(.*\)"/\1/p' | head -n1)"
    echo "FAIL: vendor/$dir is $name@$version but Cargo.lock pins ${locked:-<absent>}"
    fail=1
  else
    echo "ok: vendor/$dir matches Cargo.lock ($name@$version)"
  fi
done

# And the reverse: every workspace member under vendor/ in the lock
# file must exist on disk (a deleted stub also skews the build).
while read -r name; do
  if [ ! -d "$root/vendor/$name" ]; then
    echo "FAIL: Cargo.lock references vendored crate \"$name\" but vendor/$name is missing"
    fail=1
  fi
done < <(sed -n 's/^name = "\(criterion\|parking_lot\|proptest\|rand\)"$/\1/p' "$lock")

if [ "$fail" -ne 0 ]; then
  echo "vendored stub drift detected — align vendor/*/Cargo.toml with Cargo.lock"
  exit 1
fi
echo "all vendored stubs match Cargo.lock"
